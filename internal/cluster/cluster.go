// Package cluster is the routing front for a predictd cluster: an HTTP
// handler (mounted by cmd/predictrouter) that owns admission — decode,
// size caps, validation — and forwards each canonicalized request to
// the peer that owns its content key on a consistent-hash ring
// (internal/ring). Because router and peer reduce a request to the
// identical canonical key (serve.CanonicalKey), N peer caches behave
// like one cache: every repetition of a request lands on the one peer
// whose cache can answer it.
//
// The robustness story is layered on top of the ring's ordered owner
// list — Owners(key, n) is the owner followed by its natural
// successors, so failover targets are as stable as owners:
//
//   - Health state machines. Each peer is tracked through
//     Unknown/Healthy/Suspect/Draining/Down by active probes (/healthz
//     liveness, /readyz admission) and passive forwarding signals. A
//     transport failure demotes to Suspect immediately; FailThreshold
//     consecutive failures demote to Down, after which reprobes follow
//     a capped exponential backoff whose stagger is hash-derived
//     (ring.Stagger) — deterministic spacing, no math/rand jitter.
//
//   - Failover. A request tries the key's owners in order, healthy
//     peers first; a transport error or retryable status (429, 5xx
//     sheds) moves to the next candidate. Client errors never retry —
//     a 400 from one peer is a 400 from all of them.
//
//   - Hedging. If the first leg has not answered within the per-mode
//     hedge threshold, a second leg starts at the next candidate and
//     the first completed answer wins; the race context cancels every
//     losing leg. Racing two independent legs buys the min-of-N
//     latency distribution — the same Las Vegas min-race the paper's
//     tradition prices analytically — at the cost of bounded duplicate
//     work, which the peers' request coalescing absorbs.
//
//   - Load-aware rerouting. Peers gossip their /statsz snapshots
//     (queue occupancy over capacity) to the router; when fresh gossip
//     says a key's first choice is saturated and the next is not, the
//     two swap, moving traffic *before* the primary starts shedding.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loggpsim/internal/ring"
	"loggpsim/internal/serve"
)

// Config tunes the router. Zero fields select the documented defaults.
type Config struct {
	// Peers are the predictd base URLs (scheme optional; "host:port"
	// gets "http://"). The set — not its order — defines the ring.
	Peers []string
	// Replicas and Salt are passed to the ring (see ring.Config).
	Replicas int
	Salt     string
	// Limits caps request bodies and fields exactly as the peers do, so
	// the router rejects what a peer would reject without spending a
	// forward on it. Zero fields select serve's defaults.
	Limits serve.Limits

	// ProbeInterval spaces health probes while a peer answers; ≤ 0
	// selects 500ms. ProbeTimeout bounds one probe; ≤ 0 selects 2s.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// GossipInterval spaces /statsz load polls; ≤ 0 selects 1s.
	GossipInterval time.Duration
	// FailThreshold is how many consecutive transport failures demote a
	// peer to Down; ≤ 0 selects 2.
	FailThreshold int
	// BackoffBase/BackoffMax bound the reprobe schedule of a Down peer:
	// delay = min(base<<attempt, max), staggered deterministically.
	// ≤ 0 select 250ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// HedgeAfter maps a request mode to the latency after which a
	// second leg starts. Modes absent from the map use the built-in
	// thresholds (hedgeDefaults); an explicit ≤ 0 entry disables
	// hedging for that mode.
	HedgeAfter map[string]time.Duration
	// HedgeOff disables hedging entirely (chaos tests and baselines).
	HedgeOff bool
	// MaxAttempts bounds the candidate list per request (clamped to the
	// peer count); ≤ 0 selects 3.
	MaxAttempts int
	// ShedLoad is the gossip load fraction at or above which a peer is
	// considered saturated and rerouted around; ≤ 0 selects 0.9.
	ShedLoad float64
	// ForwardTimeout bounds one forwarded leg; ≤ 0 selects 75s (above
	// serve's 60s deadline clamp, so the peer's own deadline machinery
	// answers first).
	ForwardTimeout time.Duration
	// MaxResponseBytes caps a buffered peer response; ≤ 0 selects 8 MiB.
	MaxResponseBytes int64
	// Transport overrides the forwarding round tripper (tests).
	Transport http.RoundTripper

	// AdminToken gates the /admin/* membership API. When set, requests
	// must present it in X-Admin-Token (compared in constant time); when
	// empty, the API answers loopback callers only.
	AdminToken string
	// JoinTimeout bounds how long /admin/join waits for the new peer to
	// probe ready before the join is abandoned; ≤ 0 selects 10s.
	JoinTimeout time.Duration
	// HandoffTimeout bounds one cache handoff pass (join prewarm or
	// drain); ≤ 0 selects 30s. An expired handoff leaves the cluster
	// correct — entries that did not move are re-evaluated as misses —
	// so the bound trades hit rate, never byte-identity.
	HandoffTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.ShedLoad <= 0 {
		c.ShedLoad = 0.9
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 75 * time.Second
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = 8 << 20
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 10 * time.Second
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 30 * time.Second
	}
	c.Limits = c.Limits.WithDefaults()
	return c
}

// hedgeDefaults holds the built-in per-mode hedge thresholds as an
// ordered slice (a map literal would invite iteration, which the
// determinism lint bans here). Analyze answers in microseconds, so its
// hedge fires almost immediately; envelope runs Monte-Carlo sweeps and
// gets room before a duplicate starts.
var hedgeDefaults = []struct {
	mode  string
	after time.Duration
}{
	{serve.ModeAnalyze, 50 * time.Millisecond},
	{serve.ModeSimulate, 300 * time.Millisecond},
	{serve.ModeWorstCase, 300 * time.Millisecond},
	{serve.ModeEnvelope, 1500 * time.Millisecond},
}

// hedgeFor resolves the hedge threshold for a mode: 0 means never
// hedge.
func (c Config) hedgeFor(mode string) time.Duration {
	if c.HedgeOff {
		return 0
	}
	if d, ok := c.HedgeAfter[mode]; ok {
		if d < 0 {
			return 0
		}
		return d
	}
	for _, hd := range hedgeDefaults {
		if hd.mode == mode {
			return hd.after
		}
	}
	return 0
}

// membership is one immutable (epoch, ring) pair. The router swaps the
// whole pair atomically on every reconfiguration, and handlePredict
// loads it exactly once per request — so a request is routed under one
// epoch's ring from owner lookup through the last failover leg, never a
// torn read of a ring mid-swap.
type membership struct {
	epoch uint64
	ring  *ring.Ring
}

// Router is the cluster front. Construct with NewRouter, call Start to
// launch the probe and gossip loops, mount Handler, Close on shutdown.
// Membership changes run through the /admin API (admin.go).
type Router struct {
	cfg    Config
	member atomic.Pointer[membership]
	client *http.Client
	mux    *http.ServeMux

	// admin serializes membership reconfigurations: one join, drain, or
	// remove runs at a time, so lifecycle transitions and epoch bumps
	// never interleave.
	admin sync.Mutex

	// peersMu guards the tracked peer set — which can now outgrow and
	// outlive the ring: a joining peer is tracked (probed, gossiped)
	// before it owns keys, a draining one after it stopped owning them.
	peersMu sync.RWMutex
	peers   []*peer          // name-sorted at boot; joins append
	byName  map[string]*peer // lookup only, never iterated
	started bool             // Start ran; late-added peers self-start probes

	stop    chan struct{}
	stopOne sync.Once
	wg      sync.WaitGroup

	requests, rejected, shed, completed atomic.Int64
	forwards, ownerHits, failovers      atomic.Int64
	hedges, hedgesWon, hedgesLost       atomic.Int64
	loadReroutes                        atomic.Int64
	joins, drains, removes              atomic.Int64
	handoffMoved, handoffFailed         atomic.Int64
}

// ringNow returns the current membership's ring. Callers that make more
// than one routing decision for a request must instead load the
// membership once and use its ring throughout.
func (rt *Router) ringNow() *ring.Ring { return rt.member.Load().ring }

// Epoch returns the current membership epoch. It starts at 1 and
// increments on every ring swap (join or drain); removals of an
// already-drained peer do not touch the ring and keep the epoch.
func (rt *Router) Epoch() uint64 { return rt.member.Load().epoch }

// peerList snapshots the tracked peer set in its stable order.
func (rt *Router) peerList() []*peer {
	rt.peersMu.RLock()
	defer rt.peersMu.RUnlock()
	return append([]*peer(nil), rt.peers...)
}

// NewRouter builds a router over the configured peers. The ring is
// built from the normalized peer URLs, so every router that knows the
// same peer set routes every key identically.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	names := make([]string, len(cfg.Peers))
	for i, u := range cfg.Peers {
		names[i] = normalizePeer(u)
	}
	rg, err := ring.New(names, ring.Config{Replicas: cfg.Replicas, Salt: cfg.Salt})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	// MaxAttempts is deliberately NOT clamped to the boot-time peer
	// count: the cluster can grow past it, and ring.Owners clamps per
	// lookup anyway.
	rt := &Router{
		cfg:    cfg,
		byName: make(map[string]*peer, len(names)),
		client: &http.Client{Transport: cfg.Transport},
		stop:   make(chan struct{}),
	}
	rt.member.Store(&membership{epoch: 1, ring: rg})
	for _, name := range rg.Members() {
		p := newPeer(name, lifeServing)
		rt.peers = append(rt.peers, p)
		rt.byName[name] = p
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/predict", rt.handlePredict)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/statsz", rt.handleStatsz)
	rt.mux.HandleFunc("/admin/join", rt.handleAdminJoin)
	rt.mux.HandleFunc("/admin/drain", rt.handleAdminDrain)
	rt.mux.HandleFunc("/admin/remove", rt.handleAdminRemove)
	return rt, nil
}

// normalizePeer canonicalizes a peer URL so the ring member name — the
// identity every routing decision hangs on — does not depend on
// spelling trivia like a trailing slash.
func normalizePeer(u string) string {
	u = strings.TrimRight(u, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Start launches the per-peer probe loops and the gossip poller.
// Routing works before Start — every peer begins Unknown and the first
// forwards feel the cluster out — but failover quality depends on the
// probes running.
func (rt *Router) Start() {
	rt.peersMu.Lock()
	rt.started = true
	ps := append([]*peer(nil), rt.peers...)
	rt.peersMu.Unlock()
	for _, p := range ps {
		rt.wg.Add(1)
		go rt.probeLoop(p)
	}
	rt.wg.Add(1)
	go rt.gossipLoop()
}

// Close stops the probe and gossip loops and waits them out.
// Idempotent; in-flight forwarded requests are not interrupted.
func (rt *Router) Close() {
	rt.stopOne.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// failReject answers a router-side rejection (bad input, wrong method)
// without touching any peer.
func (rt *Router) failReject(w http.ResponseWriter, status int, format string, args ...any) {
	rt.rejected.Add(1)
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// shedResponse answers 503 when no peer could serve: every candidate
// was down, or every leg failed at the transport level.
func (rt *Router) shedResponse(w http.ResponseWriter, detail string) {
	rt.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	msg := "no peer available"
	if detail != "" {
		msg += ": " + detail
	}
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: msg})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: the router can do useful work once
// at least one peer has probed Healthy. (Suspect and Unknown peers are
// still *routed to* — readiness is a stricter bar than routability, so
// "ready" means verified capacity, not hope.)
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	for _, p := range rt.peerList() {
		if p.currentState() == StateHealthy && p.currentLife() == lifeServing {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
			return
		}
	}
	http.Error(w, "no healthy peer", http.StatusServiceUnavailable)
}

func (rt *Router) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}

// handlePredict owns admission — method, size cap, strict decode,
// validation — then routes the canonical key's candidates through the
// failover/hedge race. Rejections here never cost a forward, and the
// body is buffered once so every leg replays identical bytes.
func (rt *Router) handlePredict(w http.ResponseWriter, hr *http.Request) {
	if hr.Method != http.MethodPost {
		rt.failReject(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	hr.Body = http.MaxBytesReader(w, hr.Body, rt.cfg.Limits.MaxBodyBytes)
	body, err := io.ReadAll(hr.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.failReject(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		rt.failReject(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var r serve.Request
	if err := dec.Decode(&r); err != nil {
		rt.failReject(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := r.Validate(rt.cfg.Limits); err != nil {
		rt.failReject(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := serve.CanonicalKey(&r)
	if err != nil {
		rt.failReject(w, http.StatusBadRequest, "%v", err)
		return
	}
	rt.requests.Add(1)
	mode := r.Mode
	if mode == "" {
		mode = serve.ModeSimulate
	}
	// One membership load per request: owner lookup, candidate
	// ordering, and every failover leg run under this epoch's ring even
	// if an admin swap lands mid-request.
	m := rt.member.Load()
	owners := m.ring.Owners(key[:], rt.cfg.MaxAttempts)
	cands := rt.candidates(owners)
	if len(cands) == 0 {
		rt.shedResponse(w, "")
		return
	}
	rt.race(w, hr, body, mode, cands, owners[0])
}

// candidates orders a key's ring owners by routability: healthy peers
// first (ring order within each class), then suspect and unknown ones;
// draining and down peers are skipped entirely. If fresh gossip says
// the first choice is saturated while the second is not, the two swap
// — the load-aware reroute that moves traffic before the primary
// starts bouncing 429s.
func (rt *Router) candidates(owners []string) []*peer {
	var healthy, rest []*peer
	rt.peersMu.RLock()
	for _, name := range owners {
		p := rt.byName[name]
		if p == nil {
			// A remove raced this request's (older-epoch) owner list;
			// the peer is gone, its successor is next in the list.
			continue
		}
		switch p.currentState() {
		case StateHealthy:
			healthy = append(healthy, p)
		case StateSuspect, StateUnknown:
			rest = append(rest, p)
		}
	}
	rt.peersMu.RUnlock()
	cands := append(healthy, rest...)
	if len(cands) > 1 && rt.saturated(cands[0]) && !rt.saturated(cands[1]) {
		rt.loadReroutes.Add(1)
		cands[0], cands[1] = cands[1], cands[0]
	}
	return cands
}

// legResult is one forwarding attempt's outcome. Exactly one of resp
// and err is set.
type legResult struct {
	peer   *peer
	resp   *peerResponse
	err    error
	hedged bool // launched by the hedge timer, not by a failure
}

// peerResponse is a fully buffered peer answer, decoupled from the
// network so the race can relay a winner after losing legs are gone.
type peerResponse struct {
	status int
	header http.Header
	body   []byte
}

// race runs the failover/hedge loop over the candidate list: one leg
// starts immediately, a second starts if the hedge threshold passes
// first, and a failed leg (transport error or retryable status)
// advances to the next candidate. The first definitive completion wins
// and the shared context cancels every other leg. If every candidate
// fails at the transport level the request is shed; if the list is
// exhausted on retryable statuses the last such response is relayed —
// the client sees the peer's own 429/503 with its Retry-After intact.
func (rt *Router) race(w http.ResponseWriter, hr *http.Request, body []byte, mode string, cands []*peer, primary string) {
	ctx, cancel := context.WithCancel(hr.Context())
	defer cancel()

	results := make(chan legResult, len(cands))
	next, inflight := 0, 0
	hedgeStarted := false
	launch := func(hedged bool) {
		p := cands[next]
		next++
		inflight++
		rt.forwards.Add(1)
		p.addForward()
		if hedged {
			hedgeStarted = true
			rt.hedges.Add(1)
		}
		go func() {
			resp, err := rt.forward(ctx, p, body)
			select {
			case results <- legResult{peer: p, resp: resp, err: err, hedged: hedged}:
			case <-ctx.Done():
			}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if after := rt.cfg.hedgeFor(mode); after > 0 && next < len(cands) {
		ht := time.NewTimer(after)
		defer ht.Stop()
		hedgeC = ht.C
	}

	win := func(res legResult) {
		if hedgeStarted {
			if res.hedged {
				rt.hedgesWon.Add(1)
			} else {
				rt.hedgesLost.Add(1)
			}
		}
		rt.writeLeg(w, res, primary)
	}

	var last legResult
	for inflight > 0 {
		select {
		case <-hr.Context().Done():
			// The client went away; nothing left to write. The deferred
			// cancel reaps every leg.
			return
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				launch(true)
			}
		case res := <-results:
			inflight--
			if res.err != nil {
				if ctx.Err() != nil && (errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded)) {
					// The race context itself is dead — the client hung
					// up or its deadline expired — and this leg died of
					// that cancellation, not of the peer. Demoting the
					// peer here would let an impatient client (or a
					// hedge's own cancel) drive a healthy peer to
					// suspect. ForwardTimeout expiries are unaffected:
					// they surface as DeadlineExceeded while ctx is
					// still live, and still count against the peer.
					continue
				}
				last = res
				res.peer.noteForwardErr(rt.cfg.FailThreshold)
				if next < len(cands) {
					rt.failovers.Add(1)
					launch(false)
				}
				continue
			}
			res.peer.noteAlive()
			if res.resp.status == http.StatusServiceUnavailable {
				// serve answers 503 only while draining; remember it so
				// the next request skips this peer before the probes do.
				res.peer.noteDraining()
			}
			if retryable(res.resp.status) {
				last = res
				if next < len(cands) {
					rt.failovers.Add(1)
					launch(false)
				}
				// Even exhausted, an in-flight hedge may still answer
				// definitively; keep waiting.
				continue
			}
			win(res)
			return
		}
	}
	if last.resp != nil {
		win(last)
		return
	}
	detail := ""
	if last.err != nil {
		detail = last.err.Error()
	}
	rt.shedResponse(w, detail)
}

// retryable reports whether a status is worth trying another peer:
// sheds and server-side failures are; client errors are not — a 400
// from one peer is a 400 from all of them, and the peers' responses to
// valid requests are deterministic.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forward sends the buffered request to one peer and buffers the whole
// answer. ctx is the race's: when another leg wins, the shared cancel
// kills this one mid-flight.
func (rt *Router) forward(ctx context.Context, p *peer, body []byte) (*peerResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.name+"/predict", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxResponseBytes))
	if err != nil {
		return nil, err
	}
	return &peerResponse{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// writeLeg relays the winning peer's buffered response verbatim —
// byte-identical payloads are the cluster's correctness bar — plus the
// routing diagnostics: X-Peer names the serving peer; X-Cache and
// Retry-After pass through from the peer untouched.
func (rt *Router) writeLeg(w http.ResponseWriter, res legResult, primary string) {
	res.peer.addWin()
	if res.peer.name == primary {
		rt.ownerHits.Add(1)
	}
	h := w.Header()
	copyHeader(h, res.resp.header, "Content-Type")
	copyHeader(h, res.resp.header, "X-Cache")
	copyHeader(h, res.resp.header, "Retry-After")
	h.Set("X-Peer", res.peer.name)
	w.WriteHeader(res.resp.status)
	_, _ = w.Write(res.resp.body)
	rt.completed.Add(1)
}

func copyHeader(dst, src http.Header, key string) {
	if v := src.Get(key); v != "" {
		dst.Set(key, v)
	}
}
