// Load gossip: the router periodically polls every reachable peer's
// /statsz and keeps the freshest snapshot per peer. The interesting
// field is Load — queue-and-worker occupancy over total capacity,
// computed tear-free on the peer side — which lets candidates() route
// a key's traffic around a saturating primary *before* it starts
// shedding, instead of discovering the 429s one failover at a time.
package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"loggpsim/internal/serve"
)

// gossipLoop polls until the router closes, one concurrent sweep per
// interval. An immediate first sweep runs at Start so tests (and
// freshly booted routers) see load data without waiting an interval.
func (rt *Router) gossipLoop() {
	defer rt.wg.Done()
	rt.gossipOnce()
	t := time.NewTicker(rt.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		rt.gossipOnce()
	}
}

// gossipOnce polls every non-down peer concurrently and waits the
// sweep out, so sweeps never pile up on a slow peer.
func (rt *Router) gossipOnce() {
	var wg sync.WaitGroup
	for _, p := range rt.peerList() {
		if p.currentState() == StateDown {
			continue
		}
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			rt.gossipPeer(p)
		}(p)
	}
	wg.Wait()
}

// gossipPeer fetches one /statsz snapshot. Failures are simply not
// recorded — health demotion is the probe loop's job, and routing on a
// stale snapshot is worse than routing on none (saturated() ages them
// out).
func (rt *Router) gossipPeer(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.name+"/statsz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return
	}
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return
	}
	p.mu.Lock()
	p.gossip, p.gossipAt, p.gossipOK = st, time.Now(), true
	p.mu.Unlock()
}

// saturated reports whether the peer's freshest load snapshot is at or
// over the shed threshold. Snapshots older than three gossip intervals
// do not count — a peer that stopped answering /statsz is the probe
// loop's problem, and old news must not keep deflecting its traffic.
func (rt *Router) saturated(p *peer) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.gossipOK || time.Since(p.gossipAt) > 3*rt.cfg.GossipInterval {
		return false
	}
	return p.gossip.Load >= rt.cfg.ShedLoad
}
