// Live membership administration: the /admin/join, /admin/drain, and
// /admin/remove endpoints that resize a running cluster without
// dropping a request or corrupting byte-identity.
//
// The protocol is epoch-versioned ring swaps over coordinated cache
// handoff:
//
//   - Join: the new peer is tracked (probed, gossiped) as *joining*,
//     polled until it reports ready, then *warming*: every current
//     member streams out the cache entries whose ownership the grown
//     ring reassigns, and the new peer imports them — verify-by-key, so
//     a bad line is dropped, never stored. Only then does the router
//     swap in the grown ring (epoch+1) and mark the peer *serving*:
//     the instant the peer owns keys, its cache already holds their
//     hot entries.
//
//   - Drain: the ring swap comes FIRST (epoch+1, peer removed), so new
//     requests route to each key's successor immediately; the peer —
//     now *draining*, still answering anything in flight — then
//     streams its whole cache to the successors the post-removal ring
//     names. ring.Remove's minimal-disruption guarantee bounds the
//     moved set to exactly the drained peer's arcs.
//
//   - Remove: only a drained peer can be removed; its probe loop stops
//     and it disappears from tracking. The ring is already correct, so
//     the epoch does not move.
//
// One admin operation runs at a time (rt.admin), so a remove issued
// mid-drain blocks until the drain's handoff completes — the operator
// cannot accidentally discard a cache that is still streaming out.
//
// Correctness does not depend on any of this succeeding: a lost or
// partial handoff only costs hit rate (the entries re-evaluate as
// misses, deterministically byte-identical), never answers.
package cluster

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"loggpsim/internal/ring"
)

// adminRequest is the body of every admin endpoint: the peer URL being
// joined, drained, or removed.
type adminRequest struct {
	Peer string `json:"peer"`
}

// adminResponse reports the operation's outcome: the membership epoch
// and ring fingerprint after it, and — for join and drain — how many
// cache entries the handoff moved and how many it failed to.
type adminResponse struct {
	Epoch           uint64   `json:"epoch"`
	RingFingerprint string   `json:"ring_fingerprint"`
	RingMembers     []string `json:"ring_members"`
	Moved           int64    `json:"moved,omitempty"`
	Failed          int64    `json:"failed,omitempty"`
}

// adminAllowed gates the membership API: a configured token (constant-
// time compared) or, with no token, loopback callers only. Membership
// changes reroute every client's traffic; they must not be reachable
// from wherever predictions are.
func (rt *Router) adminAllowed(hr *http.Request) bool {
	if rt.cfg.AdminToken != "" {
		tok := hr.Header.Get("X-Admin-Token")
		return subtle.ConstantTimeCompare([]byte(tok), []byte(rt.cfg.AdminToken)) == 1
	}
	host, _, err := net.SplitHostPort(hr.RemoteAddr)
	if err != nil {
		host = hr.RemoteAddr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// decodeAdmin checks the gate and decodes the peer name, answering the
// error itself when either fails.
func (rt *Router) decodeAdmin(w http.ResponseWriter, hr *http.Request) (string, bool) {
	if !rt.adminAllowed(hr) {
		rt.failReject(w, http.StatusForbidden, "admin API is loopback- or token-gated")
		return "", false
	}
	if hr.Method != http.MethodPost {
		rt.failReject(w, http.StatusMethodNotAllowed, "POST only")
		return "", false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, hr.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req adminRequest
	if err := dec.Decode(&req); err != nil {
		rt.failReject(w, http.StatusBadRequest, "bad admin body: %v", err)
		return "", false
	}
	if req.Peer == "" {
		rt.failReject(w, http.StatusBadRequest, "missing peer")
		return "", false
	}
	return normalizePeer(req.Peer), true
}

func (rt *Router) adminOK(w http.ResponseWriter, m *membership, moved, failed int64) {
	writeJSON(w, http.StatusOK, adminResponse{
		Epoch:           m.epoch,
		RingFingerprint: m.ring.Fingerprint(),
		RingMembers:     append([]string(nil), m.ring.Members()...),
		Moved:           moved,
		Failed:          failed,
	})
}

// handleAdminJoin grows the cluster by one peer: track → await ready →
// prewarm → swap. The swap is last, so the ring never names a peer
// that has not proven it can serve.
func (rt *Router) handleAdminJoin(w http.ResponseWriter, hr *http.Request) {
	name, ok := rt.decodeAdmin(w, hr)
	if !ok {
		return
	}
	rt.admin.Lock()
	defer rt.admin.Unlock()

	rt.peersMu.Lock()
	if _, dup := rt.byName[name]; dup {
		rt.peersMu.Unlock()
		rt.failReject(w, http.StatusConflict, "%s is already a cluster member", name)
		return
	}
	p := newPeer(name, lifeJoining)
	rt.peers = append(rt.peers, p)
	rt.byName[name] = p
	started := rt.started
	rt.peersMu.Unlock()
	if started {
		rt.wg.Add(1)
		go rt.probeLoop(p)
	}

	if err := rt.awaitReady(hr.Context(), name); err != nil {
		// The candidate never became ready; untrack it so the operator
		// can retry the join cleanly.
		rt.discardPeer(p)
		rt.failReject(w, http.StatusBadGateway, "join %s: %v", name, err)
		return
	}
	p.noteReady()
	p.setLife(lifeWarming)

	cur := rt.member.Load()
	grown, err := cur.ring.Add(name)
	if err != nil {
		rt.discardPeer(p)
		rt.failReject(w, http.StatusConflict, "join %s: %v", name, err)
		return
	}

	// Prewarm: every current member streams out the entries whose
	// ownership the grown ring reassigns (minimal disruption bounds
	// this to the arcs the new peer's points split). Failures here are
	// hit-rate losses, not errors — the join proceeds.
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HandoffTimeout)
	defer cancel()
	var moved, failed int64
	for _, src := range cur.ring.Members() {
		m, f := rt.handoff(ctx, src, grown)
		moved, failed = moved+m, failed+f
	}
	rt.handoffMoved.Add(moved)
	rt.handoffFailed.Add(failed)

	next := &membership{epoch: cur.epoch + 1, ring: grown}
	rt.member.Store(next)
	p.setLife(lifeServing)
	rt.joins.Add(1)
	rt.adminOK(w, next, moved, failed)
}

// handleAdminDrain shrinks the ring by one peer and streams its cache
// to the successors. The swap happens BEFORE the handoff: from the
// first instant of the drain, new keys route to peers that will still
// exist, and the draining peer only finishes what it already holds.
func (rt *Router) handleAdminDrain(w http.ResponseWriter, hr *http.Request) {
	name, ok := rt.decodeAdmin(w, hr)
	if !ok {
		return
	}
	rt.admin.Lock()
	defer rt.admin.Unlock()

	rt.peersMu.RLock()
	p := rt.byName[name]
	rt.peersMu.RUnlock()
	if p == nil {
		rt.failReject(w, http.StatusNotFound, "%s is not a cluster member", name)
		return
	}
	if life := p.currentLife(); life != lifeServing {
		rt.failReject(w, http.StatusConflict, "%s is %s, not serving", name, life)
		return
	}
	cur := rt.member.Load()
	if len(cur.ring.Members()) <= 1 {
		rt.failReject(w, http.StatusConflict, "refusing to drain the last ring member")
		return
	}
	shrunk, err := cur.ring.Remove(name)
	if err != nil {
		rt.failReject(w, http.StatusConflict, "drain %s: %v", name, err)
		return
	}

	next := &membership{epoch: cur.epoch + 1, ring: shrunk}
	rt.member.Store(next)
	p.setLife(lifeDraining)

	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HandoffTimeout)
	defer cancel()
	moved, failed := rt.handoff(ctx, name, shrunk)
	rt.handoffMoved.Add(moved)
	rt.handoffFailed.Add(failed)
	rt.drains.Add(1)
	rt.adminOK(w, next, moved, failed)
}

// handleAdminRemove forgets an already-drained peer: its probe loop
// stops and it leaves the tracked set. The ring was corrected by the
// drain, so the epoch is unchanged.
func (rt *Router) handleAdminRemove(w http.ResponseWriter, hr *http.Request) {
	name, ok := rt.decodeAdmin(w, hr)
	if !ok {
		return
	}
	rt.admin.Lock()
	defer rt.admin.Unlock()

	rt.peersMu.RLock()
	p := rt.byName[name]
	rt.peersMu.RUnlock()
	if p == nil {
		rt.failReject(w, http.StatusNotFound, "%s is not a cluster member", name)
		return
	}
	if life := p.currentLife(); life != lifeDraining {
		rt.failReject(w, http.StatusConflict, "%s is %s; drain it before removing", name, life)
		return
	}
	p.setLife(lifeGone)
	rt.discardPeer(p)
	rt.removes.Add(1)
	rt.adminOK(w, rt.member.Load(), 0, 0)
}

// discardPeer stops a peer's probe loop and removes it from tracking.
func (rt *Router) discardPeer(p *peer) {
	close(p.done)
	rt.peersMu.Lock()
	defer rt.peersMu.Unlock()
	delete(rt.byName, p.name)
	rest := make([]*peer, 0, len(rt.peers))
	for _, q := range rt.peers {
		if q != p {
			rest = append(rest, q)
		}
	}
	rt.peers = rest
}

// awaitReady polls the candidate's /readyz until it answers 200, the
// join timeout passes, or the admin request is abandoned.
func (rt *Router) awaitReady(ctx context.Context, name string) error {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.JoinTimeout)
	defer cancel()
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		if rt.probeGet(ctx, name+"/readyz") == http.StatusOK {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("peer never became ready: %w", ctx.Err())
		case <-t.C:
		}
	}
}

// handoffBatchBytes is the flush threshold for one destination's
// pending import batch. Small enough to bound router memory, large
// enough that a handoff is a handful of POSTs, not thousands.
const handoffBatchBytes = 256 << 10

// handoffLine is the router's view of one cache export line. Request
// and Response stay raw: the router relays them untouched — it has no
// business re-encoding bytes whose identity is the entire point — and
// only decodes the key, to compute the entry's next owner.
type handoffLine struct {
	Key      string          `json:"key"`
	Request  json.RawMessage `json:"request"`
	Response json.RawMessage `json:"response"`
	Cost     float64         `json:"cost"`
}

// handoffImported is the peer's /cache/import accounting.
type handoffImported struct {
	Imported int64 `json:"imported"`
	Rejected int64 `json:"rejected"`
}

// handoff streams src's cache export and re-posts every entry to the
// owner dst (the post-change ring) assigns it, batched per destination.
// Entries dst still assigns to src stay put. Returns how many entries
// the receiving peers verified and stored, and how many were lost to
// transport errors or import rejection. Purely additive: src's cache
// is never touched, so an interrupted handoff leaves both sides
// correct.
func (rt *Router) handoff(ctx context.Context, src string, dst *ring.Ring) (moved, failed int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src+"/cache/export", nil)
	if err != nil {
		return 0, 0
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, 0
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return 0, 0
	}

	// Per-destination batches. The map is keyed for accumulation only;
	// every observable flush iterates dst.Members() in ring order.
	batches := make(map[string]*bytes.Buffer)
	counts := make(map[string]int64)
	flush := func(member string) {
		b := batches[member]
		if b == nil || b.Len() == 0 {
			return
		}
		n := counts[member]
		batches[member], counts[member] = nil, 0
		m, f := rt.postImport(ctx, member, b, n)
		moved, failed = moved+m, failed+f
	}

	dec := json.NewDecoder(resp.Body)
	for ctx.Err() == nil {
		var line handoffLine
		if err := dec.Decode(&line); err != nil {
			if !errors.Is(err, io.EOF) {
				failed++ // a truncated trailing line
			}
			break
		}
		raw, err := hex.DecodeString(line.Key)
		if err != nil || len(raw) != 32 {
			failed++
			continue
		}
		owner := dst.Owner(raw)
		if owner == src {
			continue // unchanged placement; nothing to move
		}
		b := batches[owner]
		if b == nil {
			b = &bytes.Buffer{}
			batches[owner] = b
		}
		enc := json.NewEncoder(b)
		if err := enc.Encode(&line); err != nil {
			failed++
			continue
		}
		counts[owner]++
		if b.Len() >= handoffBatchBytes {
			flush(owner)
		}
	}
	for _, member := range dst.Members() {
		flush(member)
	}
	return moved, failed
}

// postImport delivers one batch of n entries to a peer's /cache/import
// and returns the peer's own verified accounting; a transport failure
// counts the whole batch as failed.
func (rt *Router) postImport(ctx context.Context, member string, body *bytes.Buffer, n int64) (moved, failed int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, member+"/cache/import", bytes.NewReader(body.Bytes()))
	if err != nil {
		return 0, n
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, n
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return 0, n
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, n
	}
	var res handoffImported
	if err := json.Unmarshal(b, &res); err != nil {
		return 0, n
	}
	return res.Imported, res.Rejected + (n - res.Imported - res.Rejected)
}
