// Per-peer health: the state machine, the active probe loop, and the
// deterministic reprobe backoff. Signals come from two directions —
// active probes (/healthz liveness, then /readyz admission) and
// passive forwarding outcomes — and both feed the same transitions, so
// a peer that dies mid-request is demoted by the very request that
// noticed, without waiting for the next probe tick.
package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"loggpsim/internal/ring"
	"loggpsim/internal/serve"
)

// State is a peer's position in the health state machine.
type State int

const (
	// StateUnknown is the boot state: never probed, never forwarded to.
	// Unknown peers are routable (behind healthy ones) so the first
	// requests feel the cluster out instead of being shed.
	StateUnknown State = iota
	// StateHealthy peers answered their latest probe ready.
	StateHealthy
	// StateSuspect peers failed recently but not FailThreshold times in
	// a row; they are routed to only when no healthy candidate exists.
	StateSuspect
	// StateDraining peers are alive but refusing new work (readyz 503);
	// they are skipped entirely — predictd answers cache hits while
	// draining, but the successor owns the key's future anyway.
	StateDraining
	// StateDown peers failed FailThreshold consecutive times; they are
	// skipped and reprobed on the capped backoff schedule.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// lifecycle is a peer's position in the membership state machine —
// orthogonal to health. Health says what the peer's process is doing
// right now (probes, transport outcomes); lifecycle says what the
// cluster has decided the peer is *for* (joining → warming → serving →
// draining → gone, driven by the /admin API). A peer can be healthy
// and draining at once: alive, answering, and deliberately owning no
// keys.
type lifecycle int

const (
	// lifeServing peers own ring keys; boot-time peers start here.
	lifeServing lifecycle = iota
	// lifeJoining peers are tracked and probed but own nothing yet.
	lifeJoining
	// lifeWarming peers probed ready and are receiving their prewarm
	// handoff; the next epoch swap makes them serving.
	lifeWarming
	// lifeDraining peers were removed from the ring (the epoch already
	// swapped) and are streaming their cache out; still answering.
	lifeDraining
	// lifeGone peers are removed; the state exists only in the final
	// snapshot a racing reader may take.
	lifeGone
)

func (l lifecycle) String() string {
	switch l {
	case lifeJoining:
		return "joining"
	case lifeWarming:
		return "warming"
	case lifeDraining:
		return "draining"
	case lifeGone:
		return "gone"
	default:
		return "serving"
	}
}

// peer is the router's view of one predictd process. All mutable state
// sits behind one mutex, so every snapshot — and every transition — is
// internally consistent.
type peer struct {
	name string // normalized base URL; the ring member identity
	done chan struct{} // closed on remove; stops this peer's probe loop

	mu      sync.Mutex
	state   State
	life    lifecycle
	fails   int // consecutive transport failures
	attempt int // backoff step while Down

	probes      int64
	probeFails  int64
	forwards    int64
	forwardErrs int64
	wins        int64

	gossip   serve.Stats
	gossipAt time.Time // zero until the first snapshot lands
	gossipOK bool
}

func newPeer(name string, life lifecycle) *peer {
	return &peer{name: name, life: life, done: make(chan struct{})}
}

func (p *peer) currentState() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

func (p *peer) currentLife() lifecycle {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.life
}

func (p *peer) setLife(l lifecycle) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.life = l
}

// noteAlive records a transport-level success — a forward that got any
// HTTP answer. It clears the failure streak and promotes every state
// except Draining back to Healthy; draining is cleared only by a ready
// probe, because a draining peer answers requests right up to exit.
func (p *peer) noteAlive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails, p.attempt = 0, 0
	if p.state != StateDraining {
		p.state = StateHealthy
	}
}

// noteReady records a 200 /readyz probe: the peer is fully back,
// whatever it was before — including a restarted process on the same
// address after a Down spell.
func (p *peer) noteReady() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails, p.attempt = 0, 0
	p.state = StateHealthy
}

// noteDraining records an alive-but-refusing peer (readyz or forward
// answered 503).
func (p *peer) noteDraining() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails, p.attempt = 0, 0
	p.state = StateDraining
}

// noteFailure records a transport-level failure. Below the threshold
// the peer turns Suspect (still routable, behind healthy peers); at
// the threshold it turns Down, and each further failure widens the
// reprobe backoff step.
func (p *peer) noteFailure(threshold int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	switch {
	case p.fails >= threshold:
		if p.state == StateDown {
			p.attempt++
		}
		p.state = StateDown
	case p.state == StateHealthy || p.state == StateUnknown:
		p.state = StateSuspect
	}
}

// noteForwardErr is noteFailure plus the forwarding error counter.
func (p *peer) noteForwardErr(threshold int) {
	p.mu.Lock()
	p.forwardErrs++
	p.mu.Unlock()
	p.noteFailure(threshold)
}

func (p *peer) addForward() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.forwards++
}

func (p *peer) addWin() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wins++
}

// probeLoop probes one peer until the router closes. The loop is
// self-scheduling: the delay to the next probe depends on the state
// the current probe left behind (steady interval while up, capped
// backoff while down).
func (rt *Router) probeLoop(p *peer) {
	defer rt.wg.Done()
	t := time.NewTimer(0) // first probe immediately
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-p.done:
			// The peer was removed from the cluster; its loop ends
			// without waiting for router shutdown.
			return
		case <-t.C:
		}
		rt.probeOnce(p)
		t.Reset(rt.probeDelay(p))
	}
}

// probeOnce runs one liveness-then-readiness probe and feeds the state
// machine: healthz failure is a transport failure, readyz 503 is
// draining, readyz 200 is fully ready.
func (rt *Router) probeOnce(p *peer) {
	p.mu.Lock()
	p.probes++
	p.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	if st := rt.probeGet(ctx, p.name+"/healthz"); st != http.StatusOK {
		rt.probeFailed(p)
		return
	}
	switch rt.probeGet(ctx, p.name+"/readyz") {
	case http.StatusOK:
		p.noteReady()
	case http.StatusServiceUnavailable:
		p.noteDraining()
	default:
		rt.probeFailed(p)
	}
}

func (rt *Router) probeFailed(p *peer) {
	p.mu.Lock()
	p.probeFails++
	p.mu.Unlock()
	p.noteFailure(rt.cfg.FailThreshold)
}

// probeGet returns the response status, or 0 on transport failure. The
// body is drained (bounded) so the keep-alive connection is reusable.
func (rt *Router) probeGet(ctx context.Context, url string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	return resp.StatusCode
}

// probeDelay picks the next probe time: the steady interval while the
// peer answers, the capped exponential backoff while it is down.
func (rt *Router) probeDelay(p *peer) time.Duration {
	p.mu.Lock()
	state, attempt := p.state, p.attempt
	p.mu.Unlock()
	if state != StateDown {
		return rt.cfg.ProbeInterval
	}
	return retryDelay(p.name, attempt, rt.cfg.BackoffBase, rt.cfg.BackoffMax)
}

// retryDelay is the reprobe schedule for a down peer: exponential in
// the attempt, capped at max, and scaled into [0.75, 1.25) of the
// nominal delay by a hash of (peer, attempt). The scale does what
// randomized jitter does — peers that died together do not reprobe in
// lockstep — while staying a pure function of its inputs, so a test
// (or an incident review) can compute the exact schedule.
func retryDelay(name string, attempt int, base, max time.Duration) time.Duration {
	if attempt > 30 {
		attempt = 30 // the shift below must not overflow; max caps anyway
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	d = time.Duration(float64(d) * (0.75 + 0.5*ring.Stagger(name, attempt)))
	if d > max {
		d = max
	}
	return d
}
