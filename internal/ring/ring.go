// Package ring is a deterministic consistent-hash ring over canonical
// result-cache keys: it decides, for any content hash, which peer of a
// predictd cluster owns the entry — and which peers stand next in line
// when the owner is down, draining, or shedding.
//
// Three properties carry the cluster's correctness story:
//
//   - Cross-process determinism. Every placement is a pure function of
//     (members, replicas, salt): virtual-node points come from an
//     explicit FNV-1a over length-framed inputs, members are sorted
//     before placement, and no map is ever iterated. Two routers built
//     from the same configuration — in different processes, on
//     different days — agree about every owner, which is what lets any
//     router instance route any key to the peer whose cache holds it.
//
//   - Minimal disruption. A member owns exactly the arcs behind its own
//     virtual points. Removing it frees only those arcs (each adopted
//     by the next point clockwise); adding it claims only the arcs its
//     new points split. Every other key keeps its owner, so a
//     membership change invalidates the smallest possible slice of
//     cluster-wide cache locality — the classic consistent-hashing
//     guarantee, property-tested in ring_test.go.
//
//   - Ordered failover. Owners(key, n) returns n *distinct* members in
//     clockwise order: the owner first, then the natural successors.
//     The router fails over (and hedges) along exactly this list, so a
//     key's fallback peer is as stable as its owner.
//
// The Salt exists for tests and for operators running several disjoint
// rings over one peer set: it perturbs every placement deterministically
// without touching member identity.
package ring

import (
	"fmt"
	"sort"
)

// Config tunes ring construction. The zero value selects the defaults.
type Config struct {
	// Replicas is the number of virtual points per member; more points
	// smooth the load split at the cost of a larger table. Values < 1
	// select 128.
	Replicas int
	// Salt perturbs every point placement deterministically. Two rings
	// with different salts carve the key space independently.
	Salt string
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 128
	}
	return c
}

// Ring is an immutable consistent-hash ring. Build with New; derive
// changed memberships with Add/Remove. Immutability is what makes the
// router's concurrent lookups trivially safe — a membership change
// swaps a pointer, never mutates a table under readers.
type Ring struct {
	cfg     Config
	members []string // sorted, unique
	points  []point  // sorted by hash, ties by (member, replica)
}

// point is one virtual node: a position on the 64-bit circle and the
// member that owns the arc ending there.
type point struct {
	hash    uint64
	member  int32 // index into members
	replica int32 // which virtual node of that member (tie-break only)
}

// New builds a ring over members. Members must be non-empty and unique;
// order does not matter (they are sorted before placement, so any
// process that knows the set builds the identical ring).
func New(members []string, cfg Config) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	cfg = cfg.withDefaults()
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
	}
	r := &Ring{
		cfg:     cfg,
		members: sorted,
		points:  make([]point, 0, len(sorted)*cfg.Replicas),
	}
	for mi, m := range sorted {
		for v := 0; v < cfg.Replicas; v++ {
			r.points = append(r.points, point{
				hash:    pointHash(cfg.Salt, m, v),
				member:  int32(mi),
				replica: int32(v),
			})
		}
	}
	// Hash ties (vanishingly rare but possible) resolve by member name
	// then replica index, so the table order — and therefore every
	// ownership answer — is a pure function of the configuration.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.member != b.member {
			return r.members[a.member] < r.members[b.member]
		}
		return a.replica < b.replica
	})
	return r, nil
}

// Members returns the member set in sorted order. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Fingerprint is a deterministic checksum of the ring's entire
// geometry — configuration, members, and every virtual point in table
// order — rendered as 16 hex digits. Two parties (a router and a peer,
// or two router replicas) that report the same fingerprint agree about
// every ownership decision, because the point table is a pure function
// of what the fingerprint covers; comparing 16 bytes replaces
// comparing member lists plus salts plus replica counts. Golden
// vectors in ring_test.go pin the value per configuration, so an
// accidental change to point placement — which would strand every
// cached entry on the wrong peer — fails loudly.
func (r *Ring) Fingerprint() string {
	h := fnv64(fnvOffset)
	h.str("loggpsim/ring/fingerprint/v1")
	h.str(r.cfg.Salt)
	h.u64(uint64(r.cfg.Replicas))
	h.u64(uint64(len(r.members)))
	for _, m := range r.members {
		h.str(m)
	}
	for _, p := range r.points {
		h.u64(p.hash)
		h.u64(uint64(p.member))
		h.u64(uint64(p.replica))
	}
	return fmt.Sprintf("%016x", fmix64(uint64(h)))
}

// Owner returns the member owning key — the first virtual point at or
// clockwise after the key's position.
func (r *Ring) Owner(key []byte) string {
	return r.members[r.points[r.find(key)].member]
}

// Owners returns up to n distinct members in clockwise order from the
// key's position: the owner first, then the failover successors. n is
// clamped to the member count.
func (r *Ring) Owners(key []byte, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n < 1 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make([]bool, len(r.members))
	for i, start := 0, r.find(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// find returns the index of the first point at or clockwise after the
// key's position, wrapping past the top of the circle.
func (r *Ring) find(key []byte) int {
	h := keyHash(r.cfg.Salt, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Add returns a new ring with member added. The original is unchanged.
func (r *Ring) Add(member string) (*Ring, error) {
	return New(append(append([]string(nil), r.members...), member), r.cfg)
}

// Remove returns a new ring without member. The original is unchanged.
func (r *Ring) Remove(member string) (*Ring, error) {
	rest := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	if len(rest) == len(r.members) {
		return nil, fmt.Errorf("ring: %q is not a member", member)
	}
	return New(rest, r.cfg)
}

// FNV-1a, written out so the hash is visibly a pure function of its
// framed inputs: no process seed (unlike hash/maphash), no global
// state, identical in every process that runs this code.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) bytes(p []byte) {
	x := uint64(*h)
	for _, b := range p {
		x = (x ^ uint64(b)) * fnvPrime
	}
	*h = fnv64(x)
}

func (h *fnv64) str(s string) {
	// Length prefix first: ("ab","c") and ("a","bc") must not collide.
	h.u64(uint64(len(s)))
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * fnvPrime
	}
	*h = fnv64(x)
}

func (h *fnv64) u64(v uint64) {
	var p [8]byte
	for i := range p {
		p[i] = byte(v >> (8 * i))
	}
	h.bytes(p[:])
}

// fmix64 is the murmur3 finalizer: FNV-1a alone avalanches poorly in
// its high bits for short inputs (sequential keys land on one tiny arc
// of the circle), and the ring positions points by exactly those high
// bits. The mixer is a fixed bijection — still a pure function of the
// input, still identical in every process.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// pointHash places one virtual node: a function of (salt, member,
// replica) only.
func pointHash(salt, member string, replica int) uint64 {
	h := fnv64(fnvOffset)
	h.str("loggpsim/ring/point/v1")
	h.str(salt)
	h.str(member)
	h.u64(uint64(replica))
	return fmix64(uint64(h))
}

// Stagger derives a deterministic fraction in [0,1) from (name,
// attempt). The cluster router spaces retry and reprobe schedules with
// it: different peers (and successive attempts at one peer) land at
// different offsets, which is what randomized jitter buys, but the
// schedule is a pure function of its inputs — the determinism
// discipline's replacement for math/rand jitter.
func Stagger(name string, attempt int) float64 {
	h := fnv64(fnvOffset)
	h.str("loggpsim/ring/stagger/v1")
	h.str(name)
	h.u64(uint64(attempt))
	return float64(fmix64(uint64(h))>>11) / (1 << 53)
}

// keyHash positions a key on the circle, in a domain separated from the
// point placements so a key can never collide with a member's own
// encoding by construction.
func keyHash(salt string, key []byte) uint64 {
	h := fnv64(fnvOffset)
	h.str("loggpsim/ring/key/v1")
	h.str(salt)
	h.u64(uint64(len(key)))
	h.bytes(key)
	return fmix64(uint64(h))
}
