package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

func mustRing(t *testing.T, members []string, cfg Config) *Ring {
	t.Helper()
	r, err := New(members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRejectsBadMemberships(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := New([]string{"a", ""}, Config{}); err == nil {
		t.Error("empty member name accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, Config{}); err == nil {
		t.Error("duplicate member accepted")
	}
}

// Ownership must be independent of the order members were listed in —
// the sorted placement is what lets two processes that merely know the
// set agree about every key.
func TestOwnershipIgnoresMemberOrder(t *testing.T) {
	members := []string{"peer-a", "peer-b", "peer-c", "peer-d", "peer-e"}
	a := mustRing(t, members, Config{})
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := mustRing(t, shuffled, Config{})
		for k := 0; k < 500; k++ {
			key := []byte(fmt.Sprintf("key-%d", k))
			if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
				t.Fatalf("trial %d key %q: owner %q vs %q under shuffled membership", trial, key, ao, bo)
			}
		}
	}
}

// Golden ownership vectors: the placements must be a pure function of
// the configuration, identical in every process. A hash that sneaks in
// per-process seeding (maphash), pointer identity, or map iteration
// would break these pins immediately.
func TestOwnershipGoldenVectors(t *testing.T) {
	r := mustRing(t, []string{"peer-a", "peer-b", "peer-c"}, Config{Replicas: 64, Salt: "golden"})
	for _, tc := range []struct {
		key  string
		want string
	}{
		{"key-0", goldenOwners["key-0"]},
		{"key-1", goldenOwners["key-1"]},
		{"key-2", goldenOwners["key-2"]},
		{"key-3", goldenOwners["key-3"]},
	} {
		got := fmt.Sprintf("%v", r.Owners([]byte(tc.key), 3))
		if got != tc.want {
			t.Errorf("Owners(%q) = %s, want pinned %s", tc.key, got, tc.want)
		}
	}
}

// goldenOwners pins the full failover order for four keys under the
// fixed golden configuration. Regenerate (and justify) only when the
// hash domain or placement scheme deliberately changes.
var goldenOwners = map[string]string{
	"key-0": "[peer-a peer-c peer-b]",
	"key-1": "[peer-a peer-b peer-c]",
	"key-2": "[peer-c peer-b peer-a]",
	"key-3": "[peer-b peer-a peer-c]",
}

// Removing one member must remap only that member's keys: everyone
// else's keys keep their owner (minimal disruption), and the remapped
// keys land on their old first successor.
func TestRemoveRemapsOnlyTheRemovedMembersKeys(t *testing.T) {
	members := []string{"peer-a", "peer-b", "peer-c", "peer-d"}
	full := mustRing(t, members, Config{})
	for _, removed := range members {
		smaller, err := full.Remove(removed)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for k := 0; k < 2000; k++ {
			key := []byte(fmt.Sprintf("key-%d", k))
			before := full.Owners(key, 2)
			after := smaller.Owner(key)
			if before[0] != removed {
				if after != before[0] {
					t.Fatalf("remove %q moved key %q from %q to %q — only the removed member's keys may move",
						removed, key, before[0], after)
				}
				continue
			}
			moved++
			if after != before[1] {
				t.Fatalf("remove %q: key %q remapped to %q, want its old successor %q",
					removed, key, after, before[1])
			}
		}
		if moved == 0 {
			t.Errorf("remove %q: no keys moved; the member owned nothing in 2000 draws", removed)
		}
	}
}

// Add is the inverse direction: a new member claims some keys, and
// every key it does not claim keeps its owner.
func TestAddClaimsOnlyItsOwnKeys(t *testing.T) {
	base := mustRing(t, []string{"peer-a", "peer-b", "peer-c"}, Config{})
	grown, err := base.Add("peer-d")
	if err != nil {
		t.Fatal(err)
	}
	claimed := 0
	for k := 0; k < 2000; k++ {
		key := []byte(fmt.Sprintf("key-%d", k))
		before, after := base.Owner(key), grown.Owner(key)
		if after == "peer-d" {
			claimed++
			continue
		}
		if after != before {
			t.Fatalf("adding peer-d moved key %q from %q to %q", key, before, after)
		}
	}
	if claimed == 0 {
		t.Error("peer-d claimed no keys in 2000 draws")
	}
	if claimed > 2000/2 {
		t.Errorf("peer-d claimed %d/2000 keys — far above its fair quarter", claimed)
	}
}

// The default replica count must spread load roughly evenly: with 128
// virtual points per member, no member of a 4-peer ring should fall
// below half its fair share over a large key sample.
func TestBalance(t *testing.T) {
	members := []string{"peer-a", "peer-b", "peer-c", "peer-d"}
	r := mustRing(t, members, Config{})
	counts := map[string]int{}
	const draws = 8000
	for k := 0; k < draws; k++ {
		counts[r.Owner([]byte(fmt.Sprintf("key-%d", k)))]++
	}
	fair := draws / len(members)
	for _, m := range members {
		if counts[m] < fair/2 {
			t.Errorf("member %s owns %d/%d keys, below half the fair share %d", m, counts[m], draws, fair)
		}
	}
}

func TestOwnersProperties(t *testing.T) {
	members := []string{"peer-a", "peer-b", "peer-c", "peer-d", "peer-e"}
	r := mustRing(t, members, Config{})
	for k := 0; k < 200; k++ {
		key := []byte(fmt.Sprintf("key-%d", k))
		all := r.Owners(key, len(members))
		if len(all) != len(members) {
			t.Fatalf("Owners(key, all) returned %d members, want %d", len(all), len(members))
		}
		seen := map[string]bool{}
		for _, m := range all {
			if seen[m] {
				t.Fatalf("Owners repeated member %q for key %q", m, key)
			}
			seen[m] = true
		}
		if all[0] != r.Owner(key) {
			t.Fatalf("Owners[0] %q disagrees with Owner %q", all[0], r.Owner(key))
		}
		// A shorter list must be a prefix of the longer one: failover
		// order cannot depend on how many successors were requested.
		two := r.Owners(key, 2)
		if len(two) != 2 || two[0] != all[0] || two[1] != all[1] {
			t.Fatalf("Owners(key, 2) = %v is not a prefix of %v", two, all)
		}
	}
	if got := r.Owners([]byte("x"), 0); got != nil {
		t.Errorf("Owners(n=0) = %v, want nil", got)
	}
	if got := r.Owners([]byte("x"), 99); len(got) != len(members) {
		t.Errorf("Owners(n>members) returned %d, want clamp to %d", len(got), len(members))
	}
}

// Different salts must carve the space differently — otherwise the salt
// is dead configuration.
func TestSaltChangesPlacement(t *testing.T) {
	members := []string{"peer-a", "peer-b", "peer-c"}
	a := mustRing(t, members, Config{Salt: "one"})
	b := mustRing(t, members, Config{Salt: "two"})
	differ := 0
	for k := 0; k < 500; k++ {
		key := []byte(fmt.Sprintf("key-%d", k))
		if a.Owner(key) != b.Owner(key) {
			differ++
		}
	}
	if differ == 0 {
		t.Error("two salts produced identical ownership for 500 keys")
	}
}

// FuzzOwnership drives arbitrary keys through two independently built
// rings and checks the invariants that the router's failover logic
// leans on: agreement between identically configured rings, distinct
// ordered owners, and the minimal-disruption successor rule.
func FuzzOwnership(f *testing.F) {
	f.Add([]byte("seed"))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	members := []string{"peer-a", "peer-b", "peer-c", "peer-d"}
	build := func() *Ring {
		r, err := New([]string{"peer-d", "peer-b", "peer-a", "peer-c"}, Config{Replicas: 32})
		if err != nil {
			f.Fatal(err)
		}
		return r
	}
	one, two := build(), build()
	f.Fuzz(func(t *testing.T, key []byte) {
		a := one.Owners(key, len(members))
		b := two.Owners(key, len(members))
		if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
			t.Fatalf("identically configured rings disagree: %v vs %v", a, b)
		}
		seen := map[string]bool{}
		for _, m := range a {
			if seen[m] {
				t.Fatalf("duplicate owner %q in %v", m, a)
			}
			seen[m] = true
		}
		smaller, err := one.Remove(a[0])
		if err != nil {
			t.Fatal(err)
		}
		if got := smaller.Owner(key); got != a[1] {
			t.Fatalf("removing owner %q remapped key to %q, want successor %q", a[0], got, a[1])
		}
	})
}

// Fingerprint golden vectors: the checksum must be a pure function of
// (members, replicas, salt), stable across processes, and sensitive to
// every one of those inputs — it is how a router and its peers (or two
// router replicas) cheaply assert they agree on membership. Regenerate
// only when the placement scheme deliberately changes, which orphans
// every cluster cache entry and deserves the loud failure.
func TestFingerprintGoldenVectors(t *testing.T) {
	golden := []struct {
		members []string
		cfg     Config
		want    string
	}{
		{[]string{"peer-a", "peer-b", "peer-c"}, Config{Replicas: 64, Salt: "golden"}, "00f36bef9136f37d"},
		{[]string{"peer-a", "peer-b"}, Config{Replicas: 64, Salt: "golden"}, "aa34fd97be8c40af"},
		{[]string{"peer-a", "peer-b", "peer-c", "peer-d"}, Config{Replicas: 64, Salt: "golden"}, "9cdd6d3298b38f22"},
		{[]string{"peer-a", "peer-b", "peer-c"}, Config{}, "ff34221a69061966"},
		{[]string{"peer-a", "peer-b", "peer-c"}, Config{Replicas: 64, Salt: "other"}, "3720c3cf146ab2f9"},
	}
	for _, tc := range golden {
		if got := mustRing(t, tc.members, tc.cfg).Fingerprint(); got != tc.want {
			t.Errorf("Fingerprint(%v, %+v) = %s, want %s", tc.members, tc.cfg, got, tc.want)
		}
	}
	// Membership changes round-trip: Add then Remove restores the
	// original fingerprint, and an Add produces the same fingerprint as
	// building the larger ring from scratch — derivation path must not
	// leak into the geometry.
	base := mustRing(t, []string{"peer-a", "peer-b"}, Config{Replicas: 64, Salt: "golden"})
	grown, err := base.Add("peer-c")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := grown.Fingerprint(), golden[0].want; got != want {
		t.Errorf("Add-derived ring fingerprint %s, want the from-scratch %s", got, want)
	}
	shrunk, err := grown.Remove("peer-c")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := shrunk.Fingerprint(), golden[1].want; got != want {
		t.Errorf("Remove-derived ring fingerprint %s, want the from-scratch %s", got, want)
	}
	// Member order must not matter; salt and replica count must.
	reordered := mustRing(t, []string{"peer-c", "peer-a", "peer-b"}, Config{Replicas: 64, Salt: "golden"})
	if reordered.Fingerprint() != golden[0].want {
		t.Error("fingerprint depends on member listing order")
	}
	if mustRing(t, []string{"peer-a", "peer-b", "peer-c"}, Config{Replicas: 32, Salt: "golden"}).Fingerprint() == golden[0].want {
		t.Error("fingerprint insensitive to the replica count")
	}
}
