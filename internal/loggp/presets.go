package loggp

// Machine presets. The Meiko CS-2 numbers reconstruct the values used in
// the paper's experiments; the OCR of the paper drops digits
// ("L=9 s, o= s, g=1s, G=.3s"), so o, g and G are best-effort
// reconstructions documented in DESIGN.md. The remaining presets are
// round-number machines useful for sensitivity studies; none of the
// experiments depend on them.

// MeikoCS2 returns parameters close to the Meiko CS-2 used in the paper,
// with p processors. The combination is chosen so that (a) the behaviour
// the paper narrates for its Figures 4 and 5 reproduces exactly — a
// 112-byte message arrives after o+(k-1)G+L = 11.555µs, inside the
// g = 16µs send gap, so a processor's pending receives win against its
// second send (receive priority) as in the paper's account of processor
// 4 — and (b) the Gaussian-elimination sweep of Figure 7 has an interior
// optimal block size, as published: with a larger G the experiment is
// bandwidth-bound at every block size and the optimum degenerates to the
// largest block. The OCR of the paper drops the digits of o, g and G, so
// these are shape-preserving reconstructions (see DESIGN.md).
func MeikoCS2(p int) Params {
	return Params{L: 9, O: 2, Gap: 16, G: 0.005, P: p}
}

// Cluster returns parameters of a generic commodity cluster with a
// higher latency and per-message cost than the CS-2.
func Cluster(p int) Params {
	return Params{L: 30, O: 10, Gap: 25, G: 0.01, P: p}
}

// LowOverhead returns a machine where o dominates g, exercising the
// max(o,g) receive-to-send rule of Figure 1.
func LowOverhead(p int) Params {
	return Params{L: 5, O: 8, Gap: 2, G: 0.005, P: p}
}

// Uniform returns a degenerate machine where every cost is one
// microsecond; handy for hand-checkable unit tests.
func Uniform(p int) Params {
	return Params{L: 1, O: 1, Gap: 1, G: 0, P: p}
}
