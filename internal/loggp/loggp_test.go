package loggp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"meiko", MeikoCS2(8), true},
		{"uniform", Uniform(1), true},
		{"zero procs", Params{P: 0}, false},
		{"negative procs", Params{P: -3}, false},
		{"negative L", Params{L: -1, P: 2}, false},
		{"negative o", Params{O: -1, P: 2}, false},
		{"negative g", Params{Gap: -0.5, P: 2}, false},
		{"negative G", Params{G: -0.01, P: 2}, false},
		{"all zero costs", Params{P: 4}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestSerialization(t *testing.T) {
	p := Params{G: 0.5, P: 2}
	tests := []struct {
		bytes int
		want  float64
	}{
		{1, 0},   // single byte: no per-byte gap beyond the first
		{0, 0},   // degenerate, treated as single
		{2, 0.5}, // one extra byte
		{11, 5},  // ten extra bytes
	}
	for _, tt := range tests {
		if got := p.Serialization(tt.bytes); got != tt.want {
			t.Errorf("Serialization(%d) = %g, want %g", tt.bytes, got, tt.want)
		}
	}
}

func TestArrivalDelayAndPointToPoint(t *testing.T) {
	p := Params{L: 9, O: 4, Gap: 13, G: 0.03, P: 2}
	// o + (k-1)G + L for k = 112.
	wantArrive := 4 + 111*0.03 + 9
	if got := p.ArrivalDelay(112); math.Abs(got-wantArrive) > 1e-12 {
		t.Errorf("ArrivalDelay(112) = %g, want %g", got, wantArrive)
	}
	if got := p.PointToPoint(112); math.Abs(got-(wantArrive+4)) > 1e-12 {
		t.Errorf("PointToPoint(112) = %g, want %g", got, wantArrive+4)
	}
	// A one-byte message must cost exactly o + L + o end-to-end.
	if got := p.PointToPoint(1); got != 4+9+4 {
		t.Errorf("PointToPoint(1) = %g, want %g", got, 4.0+9+4)
	}
}

func TestIntervalPaperRules(t *testing.T) {
	// g > o: every pair of short messages is g apart, including the
	// recv->send case (max(o,g) = g).
	p := Params{L: 9, O: 4, Gap: 13, G: 0.03, P: 2}
	for _, prev := range []OpKind{Send, Recv} {
		for _, next := range []OpKind{Send, Recv} {
			if got := p.Interval(prev, next, 1); got != 13 {
				t.Errorf("Interval(%v,%v,1) = %g, want 13", prev, next, got)
			}
		}
	}
}

func TestIntervalBusyWindowDominatesSmallGap(t *testing.T) {
	// o > g: the o busy window floors every pair at o, which realizes
	// Figure 1's max(o,g) receive-to-send rule and extends it to the
	// other pairs (a processor engaged for o cannot start sooner).
	p := LowOverhead(2) // o=8, g=2
	for _, prev := range []OpKind{Send, Recv} {
		for _, next := range []OpKind{Send, Recv} {
			if got := p.Interval(prev, next, 1); got != 8 {
				t.Errorf("Interval(%v,%v) = %g, want o=8", prev, next, got)
			}
		}
	}
}

func TestIntervalLongMessageFloor(t *testing.T) {
	// A long previous message keeps the port busy for (k-1)G, which can
	// exceed g.
	p := Params{L: 9, O: 4, Gap: 13, G: 0.5, P: 2}
	k := 1001 // serialization = 500 µs >> g
	if got := p.Interval(Send, Send, k); got != 500 {
		t.Errorf("Interval(send,send,%d) = %g, want 500", k, got)
	}
	if got := p.Interval(Recv, Send, k); got != 500 {
		t.Errorf("Interval(recv,send,%d) = %g, want 500", k, got)
	}
}

func TestIntervalNoCrossGapAblation(t *testing.T) {
	p := Params{L: 9, O: 4, Gap: 13, G: 0, P: 2, NoCrossGap: true}
	// Unlike operations: only the o-busy window applies.
	if got := p.Interval(Send, Recv, 1); got != 4 {
		t.Errorf("Interval(send,recv) = %g, want o=4", got)
	}
	if got := p.Interval(Recv, Send, 1); got != 4 {
		t.Errorf("Interval(recv,send) = %g, want o=4", got)
	}
	// Like operations keep the gap.
	if got := p.Interval(Send, Send, 1); got != 13 {
		t.Errorf("Interval(send,send) = %g, want g=13", got)
	}
}

func TestOpKindString(t *testing.T) {
	if Send.String() != "send" || Recv.String() != "recv" {
		t.Fatalf("OpKind strings: %q %q", Send.String(), Recv.String())
	}
	if s := OpKind(7).String(); !strings.Contains(s, "7") {
		t.Fatalf("unknown OpKind string = %q", s)
	}
}

func TestParamsString(t *testing.T) {
	s := MeikoCS2(8).String()
	for _, want := range []string{"L=9", "o=2", "g=16", "G=0.005", "P=8"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, p := range []Params{MeikoCS2(8), Cluster(16), LowOverhead(4), Uniform(2)} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %v invalid: %v", p, err)
		}
	}
}

// Property: the interval bound is never below the serialization floor and
// never below the configured gap for like operations, for arbitrary
// non-negative parameters.
func TestIntervalProperties(t *testing.T) {
	f := func(l, o, g, gb float64, bytes uint16) bool {
		p := Params{
			L: math.Abs(l), O: math.Abs(o),
			Gap: math.Abs(g), G: math.Abs(gb) / 1000,
			P: 2,
		}
		b := int(bytes%4096) + 1
		for _, prev := range []OpKind{Send, Recv} {
			for _, next := range []OpKind{Send, Recv} {
				iv := p.Interval(prev, next, b)
				if iv < p.Serialization(b) || iv < p.O {
					return false
				}
				if prev == next && iv < p.Gap {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ArrivalDelay and PointToPoint are monotonically non-decreasing
// in message size.
func TestDelayMonotoneInSize(t *testing.T) {
	f := func(a, b uint16) bool {
		p := MeikoCS2(8)
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return p.ArrivalDelay(x) <= p.ArrivalDelay(y) &&
			p.PointToPoint(x) <= p.PointToPoint(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousExtension(t *testing.T) {
	plain := Params{L: 9, O: 2, Gap: 16, G: 0.005, P: 2}
	rdv := plain
	rdv.S = 1024
	// Messages at or below the threshold are untouched.
	for _, k := range []int{1, 112, 1024} {
		if rdv.ArrivalDelay(k) != plain.ArrivalDelay(k) {
			t.Errorf("k=%d: rendezvous changed a small message", k)
		}
		if rdv.Interval(Send, Send, k) != plain.Interval(Send, Send, k) {
			t.Errorf("k=%d: rendezvous changed a small interval", k)
		}
	}
	// Above the threshold the delivery pays the 2(o+L) handshake.
	k := 4096
	wantExtra := 2 * (plain.O + plain.L)
	if got := rdv.ArrivalDelay(k) - plain.ArrivalDelay(k); math.Abs(got-wantExtra) > 1e-12 {
		t.Errorf("handshake delay = %g, want %g", got, wantExtra)
	}
	// The sender's port stays busy through the handshake.
	if got := rdv.Interval(Send, Send, k) - plain.Interval(Send, Send, k); got < wantExtra-plain.Gap {
		t.Errorf("handshake did not extend the send interval: %g", got)
	}
	// Negative thresholds are invalid.
	bad := plain
	bad.S = -1
	if bad.Validate() == nil {
		t.Error("negative S accepted")
	}
}
