// Package loggp defines the LogGP machine model used throughout the
// repository: the five parameters of Alexandrov et al. (L, o, g, G, P)
// plus the gap rules between unlike operations that Rugina & Schauser
// add in Figure 1 of the paper.
//
// All times are float64 microseconds. Message sizes are bytes.
package loggp

import (
	"errors"
	"fmt"
	"math"
)

// OpKind distinguishes the two communication operations a processor can
// perform. The LogGP single-port assumption means a processor performs at
// most one of them at a time.
type OpKind int

const (
	// Send is the transmission of one message.
	Send OpKind = iota
	// Recv is the reception of one message.
	Recv
)

// String returns "send" or "recv".
func (k OpKind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Params holds the LogGP parameters of a machine.
//
// The paper extends plain LogGP with gaps between unlike consecutive
// operations (its Figure 1): after a send the next receive may begin g
// time units later, and after a receive the next send may begin
// max(o,g)-o time units after the receive's overhead completes, i.e.
// max(o,g) after the receive started. Setting NoCrossGap disables that
// extension (gap constraints then apply only between like operations,
// unlike operations being limited only by the o-busy window); it exists
// for the ablation benchmarks.
type Params struct {
	// L is an upper bound on the latency of a message through the
	// network, in microseconds.
	L float64
	// O is the overhead: the time a processor is engaged in the
	// transmission or reception of one message, in microseconds.
	// (Lowercase o in the paper; exported names must be capitalized.)
	O float64
	// Gap is the minimum interval between consecutive message
	// transmissions or consecutive receptions at one processor, in
	// microseconds (lowercase g in the paper).
	Gap float64
	// G is the gap per byte for long messages: the time per byte of a
	// long message, in microseconds per byte (uppercase G in the paper).
	G float64
	// P is the number of processors.
	P int

	// S, when positive, enables the LogGPS rendezvous extension (Ino,
	// Fujiwara & Hagihara's synchronization parameter): messages larger
	// than S bytes are sent with a request/acknowledge handshake before
	// the data moves, so their delivery costs an extra round trip
	// (2(o+L)) and the sender's port stays busy accordingly. Zero (the
	// default) reproduces plain LogGP, the model the paper uses.
	S int

	// NoCrossGap disables the paper's Figure-1 gap rules between unlike
	// operations (ablation switch; zero value reproduces the paper).
	NoCrossGap bool
}

// Validate reports whether the parameters describe a usable machine.
// Besides sign checks, each time parameter must be finite: a NaN slips
// past every ordered comparison (NaN < 0 is false) and, once it reaches
// the simulators, silently corrupts their clock orderings and
// arrival-keyed heaps.
func (p Params) Validate() error {
	switch {
	case p.P <= 0:
		return fmt.Errorf("loggp: P must be positive, got %d", p.P)
	case !finite(p.L) || p.L < 0:
		return fmt.Errorf("loggp: L must be finite and non-negative, got %g", p.L)
	case !finite(p.O) || p.O < 0:
		return fmt.Errorf("loggp: o must be finite and non-negative, got %g", p.O)
	case !finite(p.Gap) || p.Gap < 0:
		return fmt.Errorf("loggp: g must be finite and non-negative, got %g", p.Gap)
	case !finite(p.G) || p.G < 0:
		return fmt.Errorf("loggp: G must be finite and non-negative, got %g", p.G)
	case p.S < 0:
		return fmt.Errorf("loggp: S must be non-negative, got %d", p.S)
	}
	return nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// ErrBadMessageSize is returned (wrapped) for non-positive message sizes.
var ErrBadMessageSize = errors.New("loggp: message size must be at least one byte")

// Serialization returns the port-occupancy time of a k-byte message
// beyond its first byte: (k-1)*G, plus — under the LogGPS extension —
// the rendezvous handshake's round trip for messages above S.
func (p Params) Serialization(bytes int) float64 {
	s := 0.0
	if bytes > 1 {
		s = float64(bytes-1) * p.G
	}
	if p.rendezvous(bytes) {
		s += 2 * (p.O + p.L)
	}
	return s
}

// rendezvous reports whether a message of this size takes the LogGPS
// handshake path.
func (p Params) rendezvous(bytes int) bool { return p.S > 0 && bytes > p.S }

// ArrivalDelay returns the time from the start of a send operation until
// the message is available for reception at the destination:
// o + (k-1)G + L, plus the rendezvous round trip 2(o+L) for messages
// above the LogGPS threshold.
func (p Params) ArrivalDelay(bytes int) float64 {
	return p.O + p.Serialization(bytes) + p.L
}

// PointToPoint returns the LogGP end-to-end time of a single k-byte
// message between two otherwise idle processors: o + (k-1)G + L + o.
func (p Params) PointToPoint(bytes int) float64 {
	return p.ArrivalDelay(bytes) + p.O
}

// Interval returns the minimum time between the start of one operation
// and the start of the next operation on the same processor. It combines
// the paper's Figure-1 gap rules with the facts that a processor engaged
// for o cannot start another operation sooner and that a long message
// keeps the port draining for (k-1)G:
//
//	send -> send:  max(g, o, (k-1)G)
//	recv -> recv:  max(g, o, (k-1)G)
//	send -> recv:  max(g, o, (k-1)G)
//	recv -> send:  max(g, o, (k-1)G)
//
// For o <= g (the usual LogGP regime and our Meiko reconstruction) this
// is exactly Figure 1: every pair waits g, and the figure's special
// max(o,g) receive-to-send rule is subsumed by the o floor, which the
// paper introduces for precisely that pair. prevBytes is the size of the
// message moved by the previous operation.
func (p Params) Interval(prev, next OpKind, prevBytes int) float64 {
	floor := max(p.O, p.Serialization(prevBytes))
	if p.NoCrossGap && prev != next {
		// Plain LogGP: unlike operations are constrained only by the
		// processor being busy for o (and the port draining).
		return floor
	}
	return max(p.Gap, floor)
}

// String formats the parameters in the paper's notation.
func (p Params) String() string {
	return fmt.Sprintf("LogGP{L=%gµs o=%gµs g=%gµs G=%gµs/B P=%d}",
		p.L, p.O, p.Gap, p.G, p.P)
}
