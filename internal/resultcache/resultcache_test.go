package resultcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func keyOf(parts ...string) Key {
	b := NewKeyBuilder("test")
	for _, p := range parts {
		b.String(p)
	}
	return b.Sum()
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New[string](Config{})
	k := keyOf("a")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put(k, "value", Meta{Size: 5, Cost: 1, Store: true})
	v, ok := c.Get(k)
	if !ok || v != "value" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreFalseIsNotRetained(t *testing.T) {
	c := New[string](Config{})
	k := keyOf("degraded")
	c.Put(k, "nope", Meta{Size: 4, Store: false})
	if _, ok := c.Get(k); ok {
		t.Fatal("Store:false value was retained")
	}
}

func TestEntryCapEvictsLeastRecentlyUsed(t *testing.T) {
	// One shard so the LRU order is globally observable.
	c := New[int](Config{Shards: 1, MaxEntries: 3, MaxBytes: -1})
	ks := make([]Key, 4)
	for i := range ks {
		ks[i] = keyOf(fmt.Sprint(i))
	}
	for i := 0; i < 3; i++ {
		c.Put(ks[i], i, Meta{Size: 1, Cost: 1, Store: true})
	}
	c.Get(ks[0]) // refresh 0; 1 is now the LRU tail
	c.Put(ks[3], 3, Meta{Size: 1, Cost: 1, Store: true})
	if _, ok := c.Get(ks[1]); ok {
		t.Fatal("LRU entry survived the entry cap")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(ks[i]); !ok {
			t.Fatalf("entry %d evicted, want LRU victim only", i)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestByteCapEnforced(t *testing.T) {
	c := New[int](Config{Shards: 1, MaxBytes: 100, MaxEntries: -1})
	for i := 0; i < 10; i++ {
		c.Put(keyOf(fmt.Sprint(i)), i, Meta{Size: 30, Cost: 1, Store: true})
	}
	if st := c.Stats(); st.Bytes > 100 {
		t.Fatalf("resident bytes %d exceed the 100-byte budget", st.Bytes)
	}
}

func TestCostAwareEvictionPrefersCheapEntries(t *testing.T) {
	c := New[int](Config{Shards: 1, MaxEntries: 3, MaxBytes: -1})
	cheap, exp1, exp2 := keyOf("cheap"), keyOf("exp1"), keyOf("exp2")
	// Insert the expensive entries first so "cheap" is the most
	// recently used — pure LRU would evict exp1, cost-aware eviction
	// must pick the cheap one despite its recency.
	c.Put(exp1, 1, Meta{Size: 1, Cost: 1e6, Store: true})
	c.Put(exp2, 2, Meta{Size: 1, Cost: 1e6, Store: true})
	c.Put(cheap, 3, Meta{Size: 1, Cost: 1, Store: true})
	c.Put(keyOf("new"), 4, Meta{Size: 1, Cost: 1e6, Store: true})
	if _, ok := c.Get(cheap); ok {
		t.Fatal("cheap entry survived; eviction is not cost-aware")
	}
	for _, k := range []Key{exp1, exp2} {
		if _, ok := c.Get(k); !ok {
			t.Fatal("expensive entry evicted while a cheap one was in the sample")
		}
	}
}

func TestTTLExpiresLazily(t *testing.T) {
	c := New[int](Config{TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	k := keyOf("t")
	c.Put(k, 7, Meta{Size: 1, Cost: 1, Store: true})
	if _, ok := c.Get(k); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get(k); ok {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Expired != 1 || st.Entries != 0 {
		t.Fatalf("stats after expiry %+v", st)
	}
}

func TestOversizeValueNotStored(t *testing.T) {
	c := New[int](Config{Shards: 1, MaxBytes: 64})
	c.Put(keyOf("big"), 1, Meta{Size: 65, Cost: 1, Store: true})
	if st := c.Stats(); st.Entries != 0 || st.Oversize != 1 {
		t.Fatalf("oversize store leaked in: %+v", st)
	}
}

func TestShardOccupancyIsReported(t *testing.T) {
	c := New[int](Config{Shards: 4})
	for i := 0; i < 64; i++ {
		c.Put(keyOf(fmt.Sprint(i)), i, Meta{Size: 8, Cost: 1, Store: true})
	}
	st := c.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("shard stats length %d, want 4", len(st.Shards))
	}
	var total int64
	populated := 0
	for _, s := range st.Shards {
		total += int64(s.Entries)
		if s.Entries > 0 {
			populated++
		}
	}
	if total != 64 || st.Entries != 64 {
		t.Fatalf("occupancy does not add up: %+v", st)
	}
	// SHA-256 keys spread essentially uniformly; with 64 keys over 4
	// shards every shard is populated with overwhelming probability.
	if populated != 4 {
		t.Fatalf("only %d of 4 shards populated", populated)
	}
}

func TestComputeCoalescesConcurrentMisses(t *testing.T) {
	c := New[int](Config{})
	k := keyOf("hot")
	var evals, started atomic.Int32

	const n = 32
	var wg sync.WaitGroup
	vals := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Add(1)
			ch, _ := c.GetOrCompute(k, func() (int, Meta, error) {
				evals.Add(1)
				for started.Load() < n {
					time.Sleep(time.Millisecond)
				}
				time.Sleep(50 * time.Millisecond)
				return 99, Meta{Size: 2, Cost: 10, Store: true}, nil
			})
			r := <-ch
			if r.Err != nil {
				t.Errorf("compute error: %v", r.Err)
			}
			vals <- r.Val
		}()
	}
	wg.Wait()
	if got := evals.Load(); got != 1 {
		t.Fatalf("evaluated %d times under coalescing, want 1", got)
	}
	for i := 0; i < n; i++ {
		if v := <-vals; v != 99 {
			t.Fatalf("caller got %d, want 99", v)
		}
	}
	st := c.Stats()
	if st.Coalesced == 0 {
		t.Fatalf("no coalesced followers recorded: %+v", st)
	}
	if st.Stores != 1 {
		t.Fatalf("stores = %d, want 1", st.Stores)
	}
	// The value is now cached: a fresh GetOrCompute must not evaluate.
	ch, leader := c.GetOrCompute(k, func() (int, Meta, error) {
		t.Error("evaluated despite a cached entry")
		return 0, Meta{}, nil
	})
	if leader {
		t.Fatal("cache hit reported leadership")
	}
	if r := <-ch; r.Val != 99 {
		t.Fatalf("hit value %d", r.Val)
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	c := New[int](Config{})
	k := keyOf("err")
	ch, _ := c.Compute(k, func() (int, Meta, error) {
		return 0, Meta{Size: 1, Store: true}, fmt.Errorf("boom")
	})
	if r := <-ch; r.Err == nil {
		t.Fatal("error swallowed")
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("failed computation was cached")
	}
}

func TestPutRefreshAdjustsBytes(t *testing.T) {
	c := New[int](Config{Shards: 1})
	k := keyOf("r")
	c.Put(k, 1, Meta{Size: 10, Cost: 1, Store: true})
	c.Put(k, 1, Meta{Size: 4, Cost: 1, Store: true})
	if st := c.Stats(); st.Bytes != 4 || st.Entries != 1 {
		t.Fatalf("refresh accounting broken: %+v", st)
	}
}

// TestConcurrentMixedUse is the package's -race soak: readers, writers
// and coalesced computes hammer a tiny cache whose budgets force
// constant eviction.
func TestConcurrentMixedUse(t *testing.T) {
	c := New[int](Config{Shards: 4, MaxEntries: 32, MaxBytes: 1 << 12})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyOf(fmt.Sprint(i % 48))
				switch i % 3 {
				case 0:
					c.Put(k, i, Meta{Size: 64, Cost: float64(i), Store: true})
				case 1:
					c.Get(k)
				default:
					ch, _ := c.GetOrCompute(k, func() (int, Meta, error) {
						return i, Meta{Size: 64, Cost: float64(i), Store: true}, nil
					})
					<-ch
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 32 || st.Bytes > 1<<12 {
		t.Fatalf("budgets exceeded after soak: %+v", st)
	}
}

func TestExportSnapshotsLiveEntriesHottestFirst(t *testing.T) {
	// One shard so the LRU walk order is globally observable.
	c := New[string](Config{Shards: 1, MaxBytes: -1, MaxEntries: -1})
	ks := make([]Key, 3)
	for i := range ks {
		ks[i] = keyOf(fmt.Sprint("export-", i))
		c.Put(ks[i], fmt.Sprint("v", i), Meta{Size: 2, Cost: float64(i), Store: true})
	}
	// Touch entry 0 so it is hottest again: expected order 0, 2, 1.
	if _, ok := c.Get(ks[0]); !ok {
		t.Fatal("missing primed entry")
	}
	got := c.Export(0)
	if len(got) != 3 {
		t.Fatalf("Export returned %d entries, want 3", len(got))
	}
	wantOrder := []Key{ks[0], ks[2], ks[1]}
	for i, e := range got {
		if e.Key != wantOrder[i] {
			t.Fatalf("Export[%d].Key = %s, want %s", i, e.Key, wantOrder[i])
		}
	}
	if got[0].Val != "v0" || got[0].Size != 2 || got[0].Cost != 0 {
		t.Fatalf("Export[0] = %+v", got[0])
	}
	if lim := c.Export(2); len(lim) != 2 || lim[0].Key != ks[0] || lim[1].Key != ks[2] {
		t.Fatalf("Export(2) = %d entries, want the 2 hottest", len(lim))
	}
	// Export must not perturb recency or the hit/miss counters.
	before := c.Stats()
	c.Export(0)
	after := c.Stats()
	if before.Hits != after.Hits || before.Misses != after.Misses {
		t.Fatal("Export moved the hit/miss counters")
	}
}

func TestExportSkipsExpiredEntries(t *testing.T) {
	c := New[string](Config{Shards: 1, TTL: time.Minute})
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	c.Put(keyOf("stale"), "old", Meta{Size: 3, Cost: 1, Store: true})
	now = now.Add(2 * time.Minute)
	c.Put(keyOf("fresh"), "new", Meta{Size: 3, Cost: 1, Store: true})
	got := c.Export(0)
	if len(got) != 1 || got[0].Val != "new" {
		t.Fatalf("Export = %+v, want only the fresh entry", got)
	}
}
