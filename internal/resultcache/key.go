// Content-addressed keys. A cache entry is addressed by a cryptographic
// hash of the canonical form of whatever produced it, so two requests
// that mean the same thing — regardless of how their JSON spelled it —
// address the same entry, and two requests that differ semantically
// collide only with SHA-256 probability.
//
// The KeyBuilder enforces the two properties a canonical encoding
// needs:
//
//   - Unambiguous framing. Every field is written with a fixed-width
//     length or value prefix, so ("ab","c") and ("a","bc") — or a field
//     that is absent versus empty — can never produce the same byte
//     stream. Callers are expected to write fields in one fixed order
//     (never an order derived from map iteration; see cmd/loggpvet's
//     maprange rule, which covers this package).
//
//   - Float canonicalization. JSON offers many spellings of one number
//     (0.5, 5e-1, 0.50); hashing the decoded float64's bit pattern
//     makes them identical by construction. The two remaining bit-level
//     aliases are collapsed explicitly: negative zero hashes as zero,
//     and every NaN payload hashes as one canonical NaN.
package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Key is a content address: the SHA-256 of a canonical encoding.
type Key [sha256.Size]byte

// String returns the key in hex, for logs and diagnostics.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyBuilder accumulates a canonical encoding and hashes it. The zero
// value is not ready; use NewKeyBuilder, which binds a domain string so
// different key spaces (different endpoints, different schema versions)
// can never alias.
type KeyBuilder struct {
	h   hash.Hash
	buf [8]byte
}

// NewKeyBuilder starts a builder whose hash is bound to domain —
// include a version in it (e.g. "loggpsim/predict/v1") so a schema
// change invalidates every old address.
func NewKeyBuilder(domain string) *KeyBuilder {
	b := &KeyBuilder{h: sha256.New()}
	b.String(domain)
	return b
}

// tag bytes keep differently-typed fields from aliasing one another.
const (
	tagString byte = 1
	tagInt    byte = 2
	tagFloat  byte = 3
	tagBool   byte = 4
)

func (b *KeyBuilder) writeTagged(tag byte, payload []byte) {
	b.buf[0] = tag
	b.h.Write(b.buf[:1])
	b.h.Write(payload)
}

// String writes a length-prefixed string field.
func (b *KeyBuilder) String(s string) {
	binary.LittleEndian.PutUint64(b.buf[:], uint64(len(s)))
	b.writeTagged(tagString, b.buf[:])
	b.h.Write([]byte(s))
}

// Int writes an integer field.
func (b *KeyBuilder) Int(v int64) {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(v))
	b.writeTagged(tagInt, p[:])
}

// Bool writes a boolean field.
func (b *KeyBuilder) Bool(v bool) {
	var p [1]byte
	if v {
		p[0] = 1
	}
	b.writeTagged(tagBool, p[:])
}

// canonicalNaN is the bit pattern every NaN payload collapses to: the
// runtime's quiet NaN, math.Float64bits(math.NaN()). Spelled as a
// constant because cmd/loggpvet rightly bans math.NaN() construction in
// covered packages — here the bits are an opaque tag, never a number.
const canonicalNaN = 0x7ff8000000000001

// Float writes a float64 field, canonicalized: -0 hashes as +0 and any
// NaN as one canonical NaN, so semantically equal numbers share a bit
// pattern no matter how they were written or computed.
func (b *KeyBuilder) Float(v float64) {
	if v == 0 { // true for both +0 and -0
		v = 0
	}
	bits := math.Float64bits(v)
	if math.IsNaN(v) {
		bits = canonicalNaN
	}
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], bits)
	b.writeTagged(tagFloat, p[:])
}

// Floats writes a float64 slice: a length field, then each element.
func (b *KeyBuilder) Floats(vs []float64) {
	b.Int(int64(len(vs)))
	for _, v := range vs {
		b.Float(v)
	}
}

// Sum finalizes the key. The builder may keep accumulating afterwards
// (Sum does not reset), but one-shot use is the norm.
func (b *KeyBuilder) Sum() Key {
	var k Key
	copy(k[:], b.h.Sum(nil))
	return k
}
