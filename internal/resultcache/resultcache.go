// Package resultcache is the content-addressed result cache behind the
// prediction service: a sharded in-process LRU+TTL store keyed by
// canonical content hashes (see key.go), with singleflight coalescing
// so concurrent misses for one key evaluate once.
//
// Why a result cache is safe here at all: every prediction layer in
// this repository is deterministic by construction — hash-seeded
// faults, worker-count-independent sweeps, bit-identical lane replays —
// so a response is a pure function of its canonical request. There is
// no staleness: an entry can never be wrong, only absent. That inverts
// the usual role of the TTL — it is a memory-pressure knob (how long
// cold entries may occupy RAM), not a correctness knob, and the default
// of "never expire" is sound.
//
// Design:
//
//   - Sharding. The key space is split over N independently-locked
//     shards (N rounded up to a power of two, selected by the key's
//     leading hash bits) so a hot server's hit path never convoys on
//     one mutex. Capacity is divided statically: each shard owns
//     MaxBytes/N bytes and MaxEntries/N entries, so shards never
//     coordinate. Anything shard-ordered that becomes observable
//     (statistics, occupancy) is produced by indexing the shard slice
//     in order — never by ranging a map (cmd/loggpvet enforces this).
//
//   - Bounded memory, cost-aware eviction. Each entry is charged its
//     response size against the byte budget and records the
//     recomputation cost its request was priced at by
//     analyze.EstimateWork. Eviction walks a small sample from the LRU
//     tail and evicts the cheapest-to-recompute candidate, so under
//     pressure the cache preferentially retains the entries whose loss
//     would cost the most simulator time (a deterministic, list-ordered
//     variant of GreedyDual-style policies).
//
//   - Coalescing. GetOrCompute routes misses through a flight.Group —
//     the singleflight core shared with search.Memoized — so a burst of
//     identical requests costs one evaluation; whether the outcome is
//     stored is the evaluator's decision (Meta.Store), letting callers
//     share degraded results without caching them.
package resultcache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"loggpsim/internal/flight"
)

// Config tunes a Cache. The zero value selects the defaults.
type Config struct {
	// Shards is the number of independently locked segments; rounded up
	// to a power of two. Zero selects 16.
	Shards int
	// MaxBytes bounds the summed entry sizes; zero selects 256 MiB.
	// Negative disables the byte bound.
	MaxBytes int64
	// MaxEntries bounds the entry count; zero selects 65536. Negative
	// disables the entry bound.
	MaxEntries int
	// TTL is how long an entry may be served after it was stored. Zero
	// means entries never expire — sound, because entries are content-
	// addressed results of deterministic computations; the TTL only
	// bounds how long cold entries occupy memory.
	TTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.MaxBytes == 0 {
		c.MaxBytes = 256 << 20
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 1 << 16
	}
	return c
}

// Meta describes one computed value to the cache.
type Meta struct {
	// Size is the bytes the entry charges against the byte budget
	// (typically the marshaled response length).
	Size int
	// Cost is the recomputation cost in analyze.Work units; eviction
	// under pressure prefers evicting low-cost entries.
	Cost float64
	// Store reports whether the value should be retained at all —
	// false for degraded or error outcomes, which are shared with
	// coalesced waiters but never cached.
	Store bool
}

// Stats is a counter snapshot (see Cache.Stats).
type Stats struct {
	// Hits and Misses count Get outcomes; Coalesced counts the
	// GetOrCompute followers that received a shared in-flight result
	// without evaluating.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Stores counts retained values; Evictions capacity-pressure
	// removals; Expired TTL removals; Oversize values too large for a
	// shard's byte budget (never stored).
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Expired   int64 `json:"expired"`
	Oversize  int64 `json:"oversize"`
	// Entries and Bytes are current totals; Shards the per-shard
	// occupancy, indexed by shard number.
	Entries int64        `json:"entries"`
	Bytes   int64        `json:"bytes"`
	Shards  []ShardStats `json:"shards"`
}

// ShardStats is one shard's occupancy.
type ShardStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Cache is a sharded content-addressed result cache. Construct with
// New; all methods are safe for concurrent use.
type Cache[V any] struct {
	cfg    Config
	mask   uint64
	shards []shard[V]
	group  flight.Group[Key, V]
	now    func() time.Time // test seam; time.Now in production

	hits, misses, coalesced, stores, evictions, expired, oversize atomic.Int64
}

type shard[V any] struct {
	mu         sync.Mutex
	index      map[Key]*list.Element
	lru        *list.List // front = most recently used; values are *entry[V]
	bytes      int64
	maxBytes   int64
	maxEntries int
}

type entry[V any] struct {
	key     Key
	val     V
	size    int64
	cost    float64
	expires int64 // unixnano; 0 = never
}

// evictSample is how many LRU-tail entries eviction considers before
// removing the cheapest-to-recompute among them. Small enough to be
// O(1), large enough that one expensive straggler at the tail does not
// pin the shard.
const evictSample = 4

// New builds a cache. The zero Config is usable.
func New[V any](cfg Config) *Cache[V] {
	cfg = cfg.withDefaults()
	c := &Cache[V]{
		cfg:    cfg,
		mask:   uint64(cfg.Shards - 1),
		shards: make([]shard[V], cfg.Shards),
		now:    time.Now,
	}
	perBytes := cfg.MaxBytes
	if perBytes > 0 {
		perBytes = cfg.MaxBytes / int64(cfg.Shards)
		if perBytes < 1 {
			perBytes = 1
		}
	}
	perEntries := cfg.MaxEntries
	if perEntries > 0 {
		perEntries = cfg.MaxEntries / cfg.Shards
		if perEntries < 1 {
			perEntries = 1
		}
	}
	for i := range c.shards {
		c.shards[i].index = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].maxBytes = perBytes
		c.shards[i].maxEntries = perEntries
	}
	return c
}

// shardFor selects by the key's leading hash bits — uniform, since the
// key is itself a cryptographic hash.
func (c *Cache[V]) shardFor(key Key) *shard[V] {
	idx := (uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
		uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56) & c.mask
	return &c.shards[idx]
}

// Get returns the value stored for key, if present and unexpired.
func (c *Cache[V]) Get(key Key) (V, bool) {
	var zero V
	s := c.shardFor(key)
	now := c.now().UnixNano()
	s.mu.Lock()
	el, ok := s.index[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return zero, false
	}
	e := el.Value.(*entry[V])
	if e.expires != 0 && now >= e.expires {
		s.remove(el, e)
		s.mu.Unlock()
		c.expired.Add(1)
		c.misses.Add(1)
		return zero, false
	}
	s.lru.MoveToFront(el)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores v for key, charging meta.Size bytes and recording
// meta.Cost for eviction. A no-op when meta.Store is false or the value
// alone exceeds a shard's whole byte budget.
func (c *Cache[V]) Put(key Key, v V, meta Meta) {
	if !meta.Store {
		return
	}
	s := c.shardFor(key)
	size := int64(meta.Size)
	if size < 0 {
		size = 0
	}
	if s.maxBytes > 0 && size > s.maxBytes {
		c.oversize.Add(1)
		return
	}
	var expires int64
	if c.cfg.TTL > 0 {
		expires = c.now().Add(c.cfg.TTL).UnixNano()
	}
	s.mu.Lock()
	if el, ok := s.index[key]; ok {
		// Deterministic computations make a same-key overwrite a
		// same-value overwrite; refresh the entry in place.
		e := el.Value.(*entry[V])
		s.bytes += size - e.size
		e.val, e.size, e.cost, e.expires = v, size, meta.Cost, expires
		s.lru.MoveToFront(el)
	} else {
		e := &entry[V]{key: key, val: v, size: size, cost: meta.Cost, expires: expires}
		s.index[key] = s.lru.PushFront(e)
		s.bytes += size
	}
	evicted, expired := s.evictOver(c.now().UnixNano())
	s.mu.Unlock()
	c.stores.Add(1)
	c.evictions.Add(evicted)
	c.expired.Add(expired)
}

// remove unlinks el/e from the shard. Callers hold the shard lock.
func (s *shard[V]) remove(el *list.Element, e *entry[V]) {
	s.lru.Remove(el)
	delete(s.index, e.key)
	s.bytes -= e.size
}

// evictOver brings the shard back under its budgets, preferring expired
// entries and then the cheapest-to-recompute of a small LRU-tail
// sample. Callers hold the shard lock.
func (s *shard[V]) evictOver(now int64) (evicted, expired int64) {
	for (s.maxBytes > 0 && s.bytes > s.maxBytes) ||
		(s.maxEntries > 0 && s.lru.Len() > s.maxEntries) {
		var victim *list.Element
		var victimCost float64
		sampled := 0
		for el := s.lru.Back(); el != nil && sampled < evictSample; el = el.Prev() {
			e := el.Value.(*entry[V])
			if e.expires != 0 && now >= e.expires {
				victim = el
				break
			}
			// Strictly-smaller keeps ties on the least recently used.
			if victim == nil || e.cost < victimCost {
				victim, victimCost = el, e.cost
			}
			sampled++
		}
		if victim == nil {
			return evicted, expired // empty shard; nothing to do
		}
		e := victim.Value.(*entry[V])
		s.remove(victim, e)
		if e.expires != 0 && now >= e.expires {
			expired++
		} else {
			evicted++
		}
	}
	return evicted, expired
}

// GetOrCompute returns the cached value for key or computes it,
// coalescing concurrent computations of the same key onto one
// evaluation through the shared singleflight group. fn runs on a new
// goroutine; the returned channel (buffered, safe to abandon) delivers
// the outcome, and leader reports whether this caller's fn was the one
// chosen to run. Outcomes with Meta.Store true are cached before
// delivery; others — degraded or failed computations — are shared with
// the coalesced waiters but never stored.
//
// Callers needing finer control (the serve layer checks its drain gate
// between the lookup and the computation) compose Get, the flight
// group, and Put themselves; GetOrCompute is the assembled fast path.
func (c *Cache[V]) GetOrCompute(key Key, fn func() (V, Meta, error)) (<-chan flight.Result[V], bool) {
	if v, ok := c.Get(key); ok {
		ch := make(chan flight.Result[V], 1)
		ch <- flight.Result[V]{Val: v}
		return ch, false
	}
	return c.Compute(key, fn)
}

// Compute is GetOrCompute without the lookup: it coalesces and runs fn,
// storing outcomes fn marks storable. Followers are counted in the
// Coalesced statistic.
func (c *Cache[V]) Compute(key Key, fn func() (V, Meta, error)) (<-chan flight.Result[V], bool) {
	ch, leader := c.group.DoChan(key, func() (V, error) {
		v, meta, err := fn()
		if err == nil {
			c.Put(key, v, meta)
		}
		return v, err
	})
	if !leader {
		c.coalesced.Add(1)
	}
	return ch, leader
}

// Entry is one exported cache entry (see Export).
type Entry[V any] struct {
	Key  Key
	Val  V
	Size int64
	Cost float64
}

// Export snapshots up to limit live entries (limit <= 0 means all),
// hottest first within each shard: shards are visited in index order and
// each shard's LRU is walked front to back, so the result is a
// deterministic function of the cache state and recency order. Expired
// entries are skipped without being counted against limit. Export does
// not touch recency or the hit/miss counters — it is an observation,
// used by the cluster handoff pass to stream a draining peer's hot set
// to its successors, and truncation by limit therefore drops the
// coldest entries of the *later* shards first (acceptable: the hot set
// is spread uniformly across shards by the content hash).
func (c *Cache[V]) Export(limit int) []Entry[V] {
	if limit <= 0 {
		limit = int(^uint(0) >> 1)
	}
	now := c.now().UnixNano()
	var out []Entry[V]
	for i := range c.shards {
		if len(out) >= limit {
			break
		}
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil && len(out) < limit; el = el.Next() {
			e := el.Value.(*entry[V])
			if e.expires != 0 && now >= e.expires {
				continue
			}
			out = append(out, Entry[V]{Key: e.key, Val: e.val, Size: e.size, Cost: e.cost})
		}
		s.mu.Unlock()
	}
	return out
}

// Stats snapshots the counters and per-shard occupancy. The shard slice
// is indexed in shard order — an intentionally deterministic ordering
// (see the package comment on map iteration).
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
		Expired:   c.expired.Load(),
		Oversize:  c.oversize.Load(),
		Shards:    make([]ShardStats, len(c.shards)),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Shards[i] = ShardStats{Entries: s.lru.Len(), Bytes: s.bytes}
		s.mu.Unlock()
		st.Entries += int64(st.Shards[i].Entries)
		st.Bytes += st.Shards[i].Bytes
	}
	return st
}
