package resultcache

import (
	"math"
	"testing"
)

func TestKeyDomainSeparation(t *testing.T) {
	a := NewKeyBuilder("v1")
	b := NewKeyBuilder("v2")
	a.String("x")
	b.String("x")
	if a.Sum() == b.Sum() {
		t.Fatal("different domains produced the same key")
	}
}

func TestKeyFramingUnambiguous(t *testing.T) {
	// ("ab","c") vs ("a","bc"): same concatenated bytes, different
	// fields — the length prefixes must separate them.
	a := NewKeyBuilder("d")
	a.String("ab")
	a.String("c")
	b := NewKeyBuilder("d")
	b.String("a")
	b.String("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("length framing is ambiguous")
	}

	// A present-but-empty string differs from an absent one.
	c := NewKeyBuilder("d")
	c.String("x")
	d := NewKeyBuilder("d")
	d.String("x")
	d.String("")
	if c.Sum() == d.Sum() {
		t.Fatal("empty field aliases an absent field")
	}
}

func TestKeyTypeTagsPreventAliasing(t *testing.T) {
	// An int and a float with identical payload bits must not collide.
	a := NewKeyBuilder("d")
	a.Int(int64(math.Float64bits(1.5)))
	b := NewKeyBuilder("d")
	b.Float(1.5)
	if a.Sum() == b.Sum() {
		t.Fatal("int/float fields alias")
	}
}

func TestFloatCanonicalization(t *testing.T) {
	sum := func(v float64) Key {
		b := NewKeyBuilder("d")
		b.Float(v)
		return b.Sum()
	}
	// JSON spellings of one number decode to one float64; the hash of
	// the decoded value is spelling-independent by construction. The
	// bit-level aliases need explicit collapsing:
	if sum(0.0) != sum(math.Copysign(0, -1)) {
		t.Fatal("-0 and +0 hash differently")
	}
	nan2 := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1) // different payload
	if sum(math.NaN()) != sum(nan2) {
		t.Fatal("NaN payloads hash differently")
	}
	if sum(0.5) == sum(0.25) {
		t.Fatal("distinct floats collide")
	}
}

func TestFloatsSliceFraming(t *testing.T) {
	a := NewKeyBuilder("d")
	a.Floats([]float64{1, 2})
	a.Floats([]float64{3})
	b := NewKeyBuilder("d")
	b.Floats([]float64{1})
	b.Floats([]float64{2, 3})
	if a.Sum() == b.Sum() {
		t.Fatal("slice framing is ambiguous")
	}
}

func TestBoolAndIntFields(t *testing.T) {
	a := NewKeyBuilder("d")
	a.Bool(true)
	b := NewKeyBuilder("d")
	b.Bool(false)
	if a.Sum() == b.Sum() {
		t.Fatal("bools collide")
	}
	c := NewKeyBuilder("d")
	c.Int(-1)
	d := NewKeyBuilder("d")
	d.Int(1)
	if c.Sum() == d.Sum() {
		t.Fatal("ints collide")
	}
}

func TestSumIsDeterministic(t *testing.T) {
	mk := func() Key {
		b := NewKeyBuilder("d")
		b.String("workload")
		b.Int(42)
		b.Float(3.25)
		b.Bool(true)
		return b.Sum()
	}
	if mk() != mk() {
		t.Fatal("identical field sequences produced different keys")
	}
	if mk().String() == "" {
		t.Fatal("hex form empty")
	}
}
