package capture

import (
	"math"
	"strings"
	"testing"

	"loggpsim/internal/blockops"
	"loggpsim/internal/cost"
	"loggpsim/internal/loggp"
	"loggpsim/internal/predictor"
	"loggpsim/internal/trace"
)

func TestCapturePingPong(t *testing.T) {
	pr, err := Capture(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(blockops.Op4, 16)
			p.Send(1, 112)
			p.Sync()
			p.Sync() // idle while P1 replies
		} else {
			p.Sync()
			p.Compute(blockops.Op4, 16)
			p.Send(0, 112)
			p.Sync()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(pr.Steps))
	}
	s0, s1 := pr.Steps[0], pr.Steps[1]
	if len(s0.Comp[0]) != 1 || len(s0.Comp[1]) != 0 {
		t.Fatalf("step 0 comp = %d/%d ops", len(s0.Comp[0]), len(s0.Comp[1]))
	}
	if len(s0.Comm.Msgs) != 1 || s0.Comm.Msgs[0] != (trace.Msg{Src: 0, Dst: 1, Bytes: 112}) {
		t.Fatalf("step 0 comm = %v", s0.Comm.Msgs)
	}
	if len(s1.Comm.Msgs) != 1 || s1.Comm.Msgs[0].Src != 1 {
		t.Fatalf("step 1 comm = %v", s1.Comm.Msgs)
	}
	// The captured program predicts like a hand-built one.
	p, err := predictor.Predict(pr, predictor.Config{
		Params: loggp.MeikoCS2(2),
		Cost:   cost.DefaultAnalytic(),
	})
	if err != nil {
		t.Fatal(err)
	}
	meiko := loggp.MeikoCS2(2)
	c := cost.DefaultAnalytic().Cost(blockops.Op4, 16)
	// Critical path: compute, fly, compute, fly back.
	want := 2*c + 2*meiko.PointToPoint(112)
	if math.Abs(p.Total-want) > 1e-9 {
		t.Fatalf("Total = %g, want %g", p.Total, want)
	}
}

func TestCaptureTrailingStepFlushed(t *testing.T) {
	pr, err := Capture(2, func(p *Proc) {
		p.Compute(blockops.Op1, 8) // never Syncs explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Steps) != 1 {
		t.Fatalf("steps = %d, want 1 (implicit flush)", len(pr.Steps))
	}
}

func TestCaptureUnequalSyncsRejected(t *testing.T) {
	_, err := Capture(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Sync()
			p.Sync()
		} else {
			p.Sync()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "unequal Sync") {
		t.Fatalf("unequal sync counts not caught: %v", err)
	}
}

func TestCaptureValidatesMessages(t *testing.T) {
	if _, err := Capture(2, func(p *Proc) { p.Send(7, 8) }); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if _, err := Capture(0, func(p *Proc) {}); err == nil {
		t.Fatal("zero processors accepted")
	}
}

func TestCaptureSelfMessages(t *testing.T) {
	pr, err := Capture(2, func(p *Proc) {
		p.Send(p.ID(), 64) // local transfer
	})
	if err != nil {
		t.Fatal(err)
	}
	st := pr.Summarize()
	if st.LocalMessages != 2 || st.NetworkMessages != 0 {
		t.Fatalf("traffic = %+v, want 2 local", st)
	}
}

// TestCaptureRingProgram records a multi-step SPMD ring rotation and
// checks it equals the hand-built step sequence.
func TestCaptureRingProgram(t *testing.T) {
	const procs, rounds, bytes = 6, 4, 256
	pr, err := Capture(procs, func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.ComputeOn(blockops.Op6, 32, uint64(p.ID()))
			p.Send((p.ID()+1)%procs, bytes)
			p.Sync()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Steps) != rounds {
		t.Fatalf("steps = %d, want %d", len(pr.Steps), rounds)
	}
	st := pr.Summarize()
	if st.Ops[blockops.Op6] != procs*rounds {
		t.Fatalf("ops = %d, want %d", st.Ops[blockops.Op6], procs*rounds)
	}
	if st.NetworkMessages != procs*rounds {
		t.Fatalf("messages = %d, want %d", st.NetworkMessages, procs*rounds)
	}
	for _, s := range pr.Steps {
		if len(s.Comm.Msgs) != procs {
			t.Fatalf("step has %d messages, want %d", len(s.Comm.Msgs), procs)
		}
	}
}
