// Package capture records an oblivious program by following the control
// flow of SPMD-style Go code — the paper's framing made executable:
// "simulate the program execution by following the control flow of the
// original program". Instead of hand-building a program.Program, an
// application is written once against the Proc API (Compute, Send,
// Sync); Capture runs it per processor, records every basic operation
// and message, and assembles the alternating computation/communication
// steps for the predictor.
//
// Because the recorded class is oblivious — the communication pattern
// may not depend on the data — the per-processor functions need no real
// data exchange and are replayed sequentially and deterministically.
// Sync marks the end of a step (the global alternation boundary); every
// processor must pass the same number of Syncs.
package capture

import (
	"fmt"

	"loggpsim/internal/blockops"
	"loggpsim/internal/program"
)

// Proc is one processor's recording context.
type Proc struct {
	id    int
	procs int
	steps []stepRecord
	cur   stepRecord
}

type stepRecord struct {
	comp []program.OpCall
	msgs []msgRecord
}

type msgRecord struct {
	dst, bytes int
}

// ID returns the processor's index in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the processor count.
func (p *Proc) P() int { return p.procs }

// Compute records one basic operation in the current step's computation
// phase.
func (p *Proc) Compute(op blockops.Op, blockSize int) {
	p.ComputeOn(op, blockSize, 0)
}

// ComputeOn is Compute with an explicit owned-block id for the cache
// models.
func (p *Proc) ComputeOn(op blockops.Op, blockSize int, block uint64) {
	p.cur.comp = append(p.cur.comp, program.OpCall{Op: op, BlockSize: blockSize, Block: block})
}

// Send records one message in the current step's communication phase.
// Sends to the processor itself are recorded as self messages (local
// transfers).
func (p *Proc) Send(dst, bytes int) {
	p.cur.msgs = append(p.cur.msgs, msgRecord{dst: dst, bytes: bytes})
}

// Sync ends the current step. All processors must Sync the same number
// of times; the work between two Syncs (or before the first, or after
// the last) forms one step.
func (p *Proc) Sync() {
	p.steps = append(p.steps, p.cur)
	p.cur = stepRecord{}
}

// Capture replays fn for every processor and assembles the recorded
// program. A trailing step is flushed implicitly if any processor
// recorded work after its last Sync.
func Capture(procs int, fn func(p *Proc)) (*program.Program, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("capture: need at least one processor, got %d", procs)
	}
	recs := make([]*Proc, procs)
	for i := range recs {
		recs[i] = &Proc{id: i, procs: procs}
		fn(recs[i])
		if len(recs[i].cur.comp) > 0 || len(recs[i].cur.msgs) > 0 {
			recs[i].Sync()
		}
	}
	steps := len(recs[0].steps)
	for i, r := range recs {
		if len(r.steps) != steps {
			return nil, fmt.Errorf("capture: processor %d recorded %d steps, processor 0 recorded %d (unequal Sync counts)",
				i, len(r.steps), steps)
		}
	}
	pr := program.New(procs)
	for s := 0; s < steps; s++ {
		step := pr.AddStep()
		// Captured sends to the recording processor itself are local
		// transfers by definition (see Processor.Send).
		step.Comm.WithLocalTransfers()
		for proc, r := range recs {
			step.Comp[proc] = append(step.Comp[proc], r.steps[s].comp...)
			for _, m := range r.steps[s].msgs {
				step.Comm.Add(proc, m.dst, m.bytes)
			}
		}
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	return pr, nil
}
