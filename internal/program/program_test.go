package program

import (
	"strings"
	"testing"

	"loggpsim/internal/blockops"
)

func TestBuildAndValidate(t *testing.T) {
	pr := New(4)
	s := pr.AddStep()
	s.AddOp(0, blockops.Op1, 8)
	s.AddOp(1, blockops.Op4, 8)
	s.Comm.Add(0, 1, 512)
	s.Comm.AddLocal(2, 512) // intentional local transfer
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pr.Steps) != 1 || len(s.Comp[0]) != 1 || len(s.Comp[1]) != 1 {
		t.Fatal("step construction wrong")
	}
}

func TestValidateRejects(t *testing.T) {
	t.Run("no processors", func(t *testing.T) {
		if err := New(0).Validate(); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("unknown op", func(t *testing.T) {
		pr := New(2)
		pr.AddStep().AddOp(0, blockops.NumOps, 8)
		if err := pr.Validate(); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("bad block size", func(t *testing.T) {
		pr := New(2)
		pr.AddStep().AddOp(0, blockops.Op1, 0)
		if err := pr.Validate(); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("bad message", func(t *testing.T) {
		pr := New(2)
		pr.AddStep().Comm.Add(0, 7, 8)
		if err := pr.Validate(); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("comm width mismatch", func(t *testing.T) {
		pr := New(2)
		s := pr.AddStep()
		s.Comm.P = 5
		if err := pr.Validate(); err == nil {
			t.Fatal("accepted")
		}
	})
}

func TestSummarize(t *testing.T) {
	pr := New(2)
	s1 := pr.AddStep()
	s1.AddOp(0, blockops.Op1, 10)
	s1.AddOp(0, blockops.Op4, 10)
	s1.Comm.Add(0, 1, 800)
	s2 := pr.AddStep()
	s2.AddOp(1, blockops.Op4, 10)
	s2.Comm.AddLocal(1, 800) // local
	st := pr.Summarize()
	if st.Steps != 2 {
		t.Fatalf("Steps = %d", st.Steps)
	}
	if st.Ops[blockops.Op1] != 1 || st.Ops[blockops.Op4] != 2 || st.Ops[blockops.Op2] != 0 {
		t.Fatalf("Ops = %v", st.Ops)
	}
	wantFlops := blockops.Flops(blockops.Op1, 10) + 2*blockops.Flops(blockops.Op4, 10)
	if st.Flops != wantFlops {
		t.Fatalf("Flops = %g, want %g", st.Flops, wantFlops)
	}
	if st.NetworkMessages != 1 || st.NetworkBytes != 800 || st.LocalMessages != 1 {
		t.Fatalf("traffic = %+v", st)
	}
}

func TestString(t *testing.T) {
	pr := New(3)
	pr.AddStep().AddOp(2, blockops.Op2, 4)
	s := pr.String()
	for _, want := range []string{"P=3", "steps=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
