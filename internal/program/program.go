// Package program represents the restricted class of parallel programs
// the paper's prediction method accepts (its Section 2): oblivious
// algorithms whose communication pattern does not depend on the input,
// whose data is divided into equal-sized basic blocks operated on only
// by a finite set of basic operations, and whose computation and
// communication steps alternate without overlapping.
//
// A Program is a sequence of Steps; each Step has a computation phase
// (per-processor lists of basic-operation invocations) followed by a
// communication phase (a trace.Pattern). The predictor charges the
// computation phase from a cost model and replays the communication
// phase through the LogGP simulators.
package program

import (
	"fmt"

	"loggpsim/internal/blockops"
	"loggpsim/internal/trace"
)

// OpCall is one basic-operation invocation on a b×b block.
type OpCall struct {
	// Op is the basic operation performed.
	Op blockops.Op
	// BlockSize is the block's side length b.
	BlockSize int
	// Block identifies the owned block the operation writes, an opaque
	// id used by the machine emulator's cache model. Operand data that
	// arrives by message is charged per message instead.
	Block uint64
}

// Step is one computation phase followed by one communication phase.
type Step struct {
	// Comp[p] lists the operations processor p performs, in order.
	Comp [][]OpCall
	// Comm is the communication phase; it may carry no messages.
	Comm *trace.Pattern
}

// Program is an oblivious block program over P processors.
type Program struct {
	// P is the processor count.
	P int
	// Steps alternate computation and communication implicitly: each
	// step's computation precedes its communication.
	Steps []*Step
}

// New returns an empty program over p processors.
func New(p int) *Program {
	return &Program{P: p}
}

// AddStep appends and returns a fresh step.
func (pr *Program) AddStep() *Step {
	s := &Step{
		Comp: make([][]OpCall, pr.P),
		Comm: trace.New(pr.P),
	}
	pr.Steps = append(pr.Steps, s)
	return s
}

// AddOp appends an operation to processor p's computation phase.
func (s *Step) AddOp(p int, op blockops.Op, blockSize int) {
	s.Comp[p] = append(s.Comp[p], OpCall{Op: op, BlockSize: blockSize})
}

// AddOpOn is AddOp with an explicit owned-block id for the emulator's
// cache model.
func (s *Step) AddOpOn(p int, op blockops.Op, blockSize int, block uint64) {
	s.Comp[p] = append(s.Comp[p], OpCall{Op: op, BlockSize: blockSize, Block: block})
}

// Validate checks processor bounds, operation identities and block
// sizes, and every step's communication pattern.
func (pr *Program) Validate() error {
	if pr.P <= 0 {
		return fmt.Errorf("program: no processors (P=%d)", pr.P)
	}
	for i, s := range pr.Steps {
		if len(s.Comp) != pr.P {
			return fmt.Errorf("program: step %d has %d computation lists for P=%d", i, len(s.Comp), pr.P)
		}
		for p, calls := range s.Comp {
			for c, call := range calls {
				if call.Op < 0 || call.Op >= blockops.NumOps {
					return fmt.Errorf("program: step %d proc %d call %d: unknown op %d", i, p, c, int(call.Op))
				}
				if call.BlockSize < 1 {
					return fmt.Errorf("program: step %d proc %d call %d: block size %d", i, p, c, call.BlockSize)
				}
			}
		}
		if s.Comm.P != pr.P {
			return fmt.Errorf("program: step %d communication is over %d processors, program over %d", i, s.Comm.P, pr.P)
		}
		if err := s.Comm.Validate(); err != nil {
			return fmt.Errorf("program: step %d: %w", i, err)
		}
	}
	return nil
}

// Stats summarizes a program.
type Stats struct {
	// Steps is the number of steps.
	Steps int
	// Ops counts basic-operation invocations per operation.
	Ops [blockops.NumOps]int
	// Flops is the total floating-point work implied by the ops.
	Flops float64
	// NetworkMessages and NetworkBytes count traffic that crosses the
	// network; LocalMessages counts self messages (local transfers).
	NetworkMessages int
	NetworkBytes    int
	LocalMessages   int
}

// Summarize computes program statistics.
func (pr *Program) Summarize() Stats {
	st := Stats{Steps: len(pr.Steps)}
	for _, s := range pr.Steps {
		for _, calls := range s.Comp {
			for _, call := range calls {
				st.Ops[call.Op]++
				st.Flops += blockops.Flops(call.Op, call.BlockSize)
			}
		}
		st.NetworkMessages += s.Comm.NetworkMessages()
		st.NetworkBytes += s.Comm.TotalBytes()
		st.LocalMessages += len(s.Comm.Msgs) - s.Comm.NetworkMessages()
	}
	return st
}

// String summarizes the program in one line.
func (pr *Program) String() string {
	st := pr.Summarize()
	return fmt.Sprintf("program{P=%d steps=%d ops=%v netMsgs=%d netBytes=%d localMsgs=%d}",
		pr.P, st.Steps, st.Ops, st.NetworkMessages, st.NetworkBytes, st.LocalMessages)
}
