// Package util is the purity-analysis helper fixture: a package with
// the repo-wide floor policy only (no direct wallclock/globalrand
// rules apply here), whose functions carry forbidden sources that the
// purity call-graph must surface at entry-point callers with the full
// chain. No findings are expected IN this package — its taints travel
// through facts.
package util

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// WallElapsed reads the wall clock. A purity source (wallclock), but
// no local finding: util is not a scheduler package.
func WallElapsed() float64 {
	return float64(time.Now().UnixNano())
}

// Draw consults the global generator. A purity source (globalrand).
func Draw(n int) int {
	return rand.Intn(n)
}

// FromEnv reads the process environment. A purity source (env).
func FromEnv() int {
	return len(os.Getenv("LOGGP_TUNE"))
}

// Keys collects map keys WITHOUT sorting: iteration order escapes into
// the returned slice. A purity source (mapiter).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned collect-then-sort idiom: the append is
// followed by a sort of the same slice, so iteration order never
// escapes. Not a source. // ok purity
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum is a pure helper: calling it taints nobody.
func Sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// Deep chains through another local function — the chain must show
// both hops when reported at a caller.
func Deep() float64 {
	return WallElapsed()
}
