// Package predictor is the poolpoison true-positive fixture: an
// evaluator reclaimed on a panic path was mid-operation when the stack
// unwound — repooling it hands corrupt state to an unrelated later
// request. Poison (drop) it instead and let the pool construct fresh.
package predictor

import "sync"

type evaluator struct{ mid bool }

var pool = sync.Pool{New: func() any { return new(evaluator) }}

// PredictRepool repools from the recovery path. One finding.
func PredictRepool(run func(*evaluator) float64) (out float64) {
	e := pool.Get().(*evaluator)
	defer func() {
		if recover() != nil {
			pool.Put(e) // want poolpoison
			out = -1
		}
	}()
	out = run(e)
	pool.Put(e)
	return out
}

// PredictPoison is the sanctioned shape: recover observes the panic
// but never repools; the success path alone returns the evaluator.
// // ok poolpoison
func PredictPoison(run func(*evaluator) float64) (out float64) {
	e := pool.Get().(*evaluator)
	defer func() {
		if recover() != nil {
			// e is poisoned: dropped, never repooled.
			out = -1
		}
	}()
	out = run(e)
	pool.Put(e)
	return out
}
