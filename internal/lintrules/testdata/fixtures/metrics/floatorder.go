// Package metrics is the floatorder fixture for the repo-wide floor:
// no scheduler or service policy names this package, yet accumulating
// floats across unordered iteration is forbidden everywhere — any such
// sum that later reaches a prediction, key, or report breaks
// byte-identical replay.
package metrics

// MeanByKey sums float samples in map iteration order. One finding
// (the map range itself is legal here — only scheduler/service scopes
// ban it — but the float accumulation across it is not).
// // ok maprange
func MeanByKey(samples map[string]float64) float64 {
	total := 0.0
	for _, v := range samples {
		total += v // want floatorder
	}
	return total / float64(len(samples))
}

// Collect accumulates from goroutine completion order. One finding.
func Collect(results chan float64) float64 {
	total := 0.0
	for v := range results {
		total = total + v // want floatorder
	}
	return total
}

// MeanSorted accumulates over a slice — the caller owns the order.
// // ok floatorder
func MeanSorted(samples []float64) float64 {
	total := 0.0
	for _, v := range samples {
		total += v
	}
	return total / float64(len(samples))
}

// CountByKey accumulates an integer across map order — integer
// addition is associative and commutative, so order cannot reach the
// result. // ok floatorder
func CountByKey(samples map[string]float64) int {
	n := 0
	for range samples {
		n++
	}
	return n
}
