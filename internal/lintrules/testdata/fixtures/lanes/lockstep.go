// Package lanes is the lane-engine true-positive fixture: the lockstep
// scheduler cores order the simulated timeline and own their tie-break
// randomness, so the scheduler rule families apply — map iteration must
// not order lanes, the global RNG and wall clock are banned, NaN/Inf
// must not enter clock arithmetic, and float accumulation must not
// cross unordered iteration.
package lanes

import (
	"math"
	"math/rand"
	"time"
)

// Decode sums per-lane clocks from a map — iteration order leaks into
// the merged timeline, and the float sum depends on it. Two findings.
func Decode(clocks map[int]float64) float64 {
	total := 0.0
	for _, c := range clocks { // want maprange
		total += c // want floatorder
	}
	return total
}

// BreakTie consults the global generator for a lane tie. One finding.
func BreakTie(n int) int {
	return rand.Intn(n) // want globalrand
}

// Stamp reads the wall clock inside the engine. One finding.
func Stamp() int64 {
	return time.Now().UnixNano() // want wallclock
}

// Poison drifts a lane clock by Inf. One finding.
func Poison(t float64) float64 {
	return t + math.Inf(1) // want nonfinite
}

// Seeded derives a lane's owned stream from its seed, uses an Inf
// sentinel in comparisons only, and indexes (not ranges) a map — the
// sanctioned patterns. No findings.
// // ok globalrand // ok wallclock // ok nonfinite
func Seeded(seed int64, classOf map[int]int32, clocks []float64) (int32, float64) {
	rng := rand.New(rand.NewSource(seed))
	best := math.Inf(1)
	for _, c := range clocks {
		best = min(best, c)
	}
	_ = rng.Intn(4)
	return classOf[8], best
}
