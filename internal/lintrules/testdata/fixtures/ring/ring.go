// Package ring is the consistent-hash placement fixture: its import
// path segment matches internal/ring, so it inherits the scheduler
// contract. The ring is the geometry every router instance must derive
// independently and identically — placement has to be a pure function
// of (members, salt), with no map order and no wall clock in the hash.
package ring

import "time"

// PointsFromSet lays out virtual nodes by ranging over the member set:
// insertion order leaks into equal-hash tie-breaks, and two routers
// built from the same set disagree about who owns which key. One
// finding.
func PointsFromSet(members map[string]int) []string {
	var points []string
	for name, replicas := range members { // want maprange
		for i := 0; i < replicas; i++ {
			points = append(points, name)
		}
	}
	return points
}

// PointsFromMembers takes the already-sorted member slice: slices
// carry their own order, so every router derives the identical ring.
// // ok maprange
func PointsFromMembers(members []string, replicas int) []string {
	var points []string
	for _, name := range members {
		for i := 0; i < replicas; i++ {
			points = append(points, name)
		}
	}
	return points
}

// SaltFromClock stamps the ring salt from the wall clock: two routers
// started at different instants own disjoint rings and every key
// remaps on restart. One finding.
func SaltFromClock() string {
	return time.Now().String() // want wallclock
}

// SaltFromConfig threads the salt through configuration, the
// sanctioned source: restarts and replicas agree. // ok wallclock
func SaltFromConfig(salt string) string {
	return salt
}
