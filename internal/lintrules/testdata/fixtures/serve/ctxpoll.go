// ctxpoll fixture: unbounded loops in deadline-scoped evaluators (the
// functions that received a context) must poll that context, or they
// outlive every deadline predictd priced into the request.
package serve

import "context"

// DrainForever spins without ever consulting ctx: under a deadline
// this worker slot leaks until process exit. One finding.
func DrainForever(ctx context.Context, work chan int) int {
	n := 0
	for { // want ctxpoll
		select {
		case v := <-work:
			n += v
		default:
		}
	}
}

// DrainUntilDeadline polls the context every iteration — the
// sanctioned shape. // ok ctxpoll
func DrainUntilDeadline(ctx context.Context, work chan int) int {
	n := 0
	for {
		select {
		case v := <-work:
			n += v
		case <-ctx.Done():
			return n
		}
	}
}

// CheckErrLoop checks ctx.Err() instead of selecting — also
// sanctioned. // ok ctxpoll
func CheckErrLoop(ctx context.Context, step func() bool) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if step() {
			return nil
		}
	}
}

// BoundedLoop is finite; bounded work completes before any reasonable
// deadline and needs no poll. // ok ctxpoll
func BoundedLoop(ctx context.Context, xs []int) int {
	n := 0
	for i := 0; i < len(xs); i++ {
		n += xs[i]
	}
	return n
}

// NoDeadline takes no context: it is not deadline-scoped, so the
// unbounded loop is its caller's concern, not this rule's.
// // ok ctxpoll
func NoDeadline(work chan int) int {
	for {
		if v := <-work; v < 0 {
			return v
		}
	}
}
