// errdrop fixture: the serve/cache paths must not discard error
// results — a swallowed error becomes a wrong or missing response
// instead of a crash.
package serve

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// EvictStale drops the error from os.Remove on the floor: a failed
// eviction silently serves stale bytes forever. One finding.
func EvictStale(path string) {
	os.Remove(path) // want errdrop
}

// EvictChecked handles the error. // ok errdrop
func EvictChecked(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// EvictAcknowledged discards explicitly — visible in review.
// // ok errdrop
func EvictAcknowledged(path string) {
	_ = os.Remove(path)
}

// CloseDeferred is a deferred cleanup: the response already committed,
// so the close error has no receiver. Deferred calls are exempt.
// // ok errdrop
func CloseDeferred(f io.Closer) {
	defer f.Close()
}

// Report writes through fmt — the print family's writer errors are
// conventionally unactionable — and through a strings.Builder, whose
// contract guarantees a nil error. // ok errdrop
func Report(w io.Writer, parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	fmt.Fprintln(w, b.String())
	return b.String()
}
