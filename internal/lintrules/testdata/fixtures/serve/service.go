// Package serve is the service-scope fixture: the prediction-service
// layer gets the iteration-order, finiteness, owned-randomness,
// context-polling, and dropped-error rules, but NOT the wall-clock ban
// — a server legitimately reads real time for deadlines and
// elapsed-time reporting.
package serve

import (
	"math"
	"math/rand"
	"time"
)

// RouteOrder leaks map iteration order into a response. One finding.
func RouteOrder(routes map[string]int) []string {
	var out []string
	for name := range routes { // want maprange
		out = append(out, name)
	}
	return out
}

// Jitter uses the global generator for a retry hint. One finding.
func Jitter() int {
	return rand.Intn(100) // want globalrand
}

// Elapsed reads the wall clock — sanctioned in the service layer (the
// same call in a scheduler package is an error). // ok wallclock
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds()
}

// BadSentinel arithmetically combines Inf into a reported time. One
// finding; NaN construction is a second.
func BadSentinel(t float64) float64 {
	worst := t + math.Inf(1) // want nonfinite
	if worst > 0 {
		return math.NaN() // want nonfinite
	}
	return worst
}

// SeededHint derives a hint from an owned source — the sanctioned
// randomness pattern. // ok globalrand
func SeededHint(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(100)
}
