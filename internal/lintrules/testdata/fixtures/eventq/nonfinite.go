// Package eventq is the nonfinite true-positive fixture: math.NaN and
// arithmetic on math.Inf must be reported, while Inf sentinels in
// assignments and comparisons stay legal.
package eventq

import "math"

// Poison injects NaN into a clock. One finding.
func Poison() float64 {
	return math.NaN() // want nonfinite
}

// Drift adds Inf into clock arithmetic. One finding.
func Drift(t float64) float64 {
	return t + math.Inf(1) // want nonfinite
}

// Sentinel uses Inf the sanctioned way: assigned, compared, fed to
// max/min. // ok nonfinite
func Sentinel(clocks []float64) (float64, bool) {
	best := math.Inf(1)
	for _, c := range clocks {
		best = min(best, c)
	}
	return best, best == math.Inf(1)
}
