package sim

// Test files are exempt: building inputs from a map is fine when the
// assertion doesn't depend on order. No finding.
func buildInputs() map[int]float64 {
	m := map[int]float64{1: 2}
	total := 0.0
	for _, c := range m {
		total += c
	}
	_ = total
	return m
}
