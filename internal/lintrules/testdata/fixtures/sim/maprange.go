// Package sim is the maprange true-positive fixture: its import path
// ends in a timeline-affecting segment, so ranging over a map here must
// be reported — and the float accumulation across that unordered
// iteration is a second, distinct finding (floatorder).
package sim

// Schedule sums clocks from a map — iteration order leaks into the
// result, and the float sum depends on it. Two findings.
func Schedule(clocks map[int]float64) float64 {
	total := 0.0
	for _, c := range clocks { // want maprange
		total += c // want floatorder
	}
	return total
}

// Sorted ranges over a slice, which is ordered and legal: slices carry
// their own order, so neither rule fires. // ok maprange // ok floatorder
func Sorted(clocks []float64) float64 {
	total := 0.0
	for _, c := range clocks {
		total += c
	}
	return total
}
