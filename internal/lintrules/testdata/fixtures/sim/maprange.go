// Package sim is the maprange true-positive fixture: its import path
// ends in a timeline-affecting segment, so ranging over a map here must
// be reported.
package sim

// Schedule sums clocks from a map — iteration order leaks into the
// result. One finding.
func Schedule(clocks map[int]float64) float64 {
	total := 0.0
	for _, c := range clocks { // want maprange
		total += c
	}
	return total
}

// Sorted ranges over a slice, which is ordered and legal.
func Sorted(clocks []float64) float64 {
	total := 0.0
	for _, c := range clocks {
		total += c
	}
	return total
}
