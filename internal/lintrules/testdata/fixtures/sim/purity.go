// Purity true-positive fixture: sim is a declared entry point of the
// determinism contract, so any call path from here into a helper
// package holding a forbidden source must be reported at the boundary
// call, with the full chain in the diagnostic.
package sim

import (
	"os"

	"lintfixtures/util"
)

// StampChain reaches the wall clock one call away.
func StampChain() float64 {
	return util.WallElapsed() // want purity
}

// DeepChain reaches the wall clock two calls away — the diagnostic
// must carry both hops.
func DeepChain() float64 {
	return util.Deep() // want purity
}

// TieBreak reaches the global generator through the helper.
func TieBreak(n int) int {
	return util.Draw(n) // want purity
}

// Tuned reaches the process environment through the helper.
func Tuned() int {
	return util.FromEnv() // want purity
}

// OrderedKeys reaches order-escaping map iteration through the helper.
func OrderedKeys(m map[string]int) []string {
	return util.Keys(m) // want purity
}

// DirectEnv reads the environment directly — env has no single-pass
// rule, so purity reports it even without a package boundary.
func DirectEnv() string {
	return os.Getenv("LOGGP_TUNE") // want purity
}

// CleanChain calls a pure helper. // ok purity
func CleanChain(xs []float64) float64 {
	return util.Sum(xs)
}

// SortedChain calls the sanctioned collect-then-sort helper. // ok purity
func SortedChain(m map[string]int) []string {
	return util.SortedKeys(m)
}

// Relay calls a tainted sibling in the SAME package: the boundary
// finding belongs to StampChain alone — reporting every transitive
// intra-package caller would bury the signal. // ok purity
func Relay() float64 {
	return StampChain()
}
