// Package cluster is the router-robustness fixture: its import path
// segment matches internal/cluster, so it inherits the service
// contract plus errdrop. The health and forward paths must poll their
// contexts (a probe loop that outlives its deadline wedges a router
// goroutine forever), must not swallow errors (a dropped relay error
// reads as a win and poisons failover accounting), and must derive
// retry stagger from peer identity, not the global generator.
package cluster

import (
	"context"
	"io"
	"math/rand"
)

// ProbeForever spins without ever consulting ctx: when the router
// drains, this probe goroutine outlives it. One finding.
func ProbeForever(ctx context.Context, probes chan error) int {
	fails := 0
	for { // want ctxpoll
		if err := <-probes; err != nil {
			fails++
		}
	}
}

// ProbeUntilStopped selects on ctx.Done every round — the sanctioned
// shape. // ok ctxpoll
func ProbeUntilStopped(ctx context.Context, probes chan error) int {
	fails := 0
	for {
		select {
		case err := <-probes:
			if err != nil {
				fails++
			}
		case <-ctx.Done():
			return fails
		}
	}
}

// RelayBody copies the peer's answer and drops the write error: a
// truncated relay is recorded as a served response. One finding.
func RelayBody(w io.Writer, body []byte) {
	w.Write(body) // want errdrop
}

// RelayAcknowledged pins the discard to _ — the status line is already
// committed, so the error is unactionable and the discard is
// deliberate. // ok errdrop
func RelayAcknowledged(w io.Writer, body []byte) {
	_, _ = w.Write(body)
}

// JitterDelay draws retry jitter from the global generator: reprobe
// schedules differ between runs and between router replicas, so an
// incident never replays. One finding.
func JitterDelay(base int) int {
	return base + rand.Intn(base) // want globalrand
}

// StaggerDelay spreads reprobes by hashing the peer's identity — the
// schedule is deterministic per peer yet decorrelated across the
// fleet. // ok globalrand
func StaggerDelay(base int, peer string) int {
	h := uint32(2166136261)
	for i := 0; i < len(peer); i++ {
		h = (h ^ uint32(peer[i])) * 16777619
	}
	return base + int(h%uint32(base))
}

// PumpHandoff relays exported cache lines with no context check: a
// wedged destination stalls the drain's handoff forever and the admin
// request never returns. One finding.
func PumpHandoff(ctx context.Context, next func() ([]byte, error), post func([]byte) error) int {
	moved := 0
	for { // want ctxpoll
		line, err := next()
		if err != nil {
			return moved
		}
		if post(line) == nil {
			moved++
		}
	}
}

// PumpHandoffBounded re-checks the handoff budget every line — the
// drain streamer's sanctioned shape: the loop condition is the
// context poll. // ok ctxpoll
func PumpHandoffBounded(ctx context.Context, next func() ([]byte, error), post func([]byte) error) int {
	moved := 0
	for ctx.Err() == nil {
		line, err := next()
		if err != nil {
			return moved
		}
		if post(line) == nil {
			moved++
		}
	}
	return moved
}

// AnnounceEpoch encodes the admin response and drops the encode error:
// the operator's join reads as accepted even when the confirmation
// never made it out. One finding.
func AnnounceEpoch(enc interface{ Encode(v any) error }, epoch uint64) {
	enc.Encode(epoch) // want errdrop
}

// AnnounceEpochAcknowledged pins the discard to _: the ring already
// swapped, so a lost confirmation is the caller's retry to discover —
// the discard is deliberate. // ok errdrop
func AnnounceEpochAcknowledged(enc interface{ Encode(v any) error }, epoch uint64) {
	_ = enc.Encode(epoch)
}
