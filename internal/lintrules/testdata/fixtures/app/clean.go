// Package app sits under the repo-wide floor policy only (float
// accumulation order and pool poisoning): the scheduler- and
// service-scope constructs — wall clock, global RNG, NaN, map ranges
// feeding int counters — are all legal here. No findings.
package app

import (
	"math"
	"math/rand"
	"time"
)

// Report uses every scheduler-scope-forbidden construct outside those
// scopes. // ok globalrand // ok wallclock // ok nonfinite // ok maprange
func Report(m map[string]int) float64 {
	n := 0
	for range m {
		n++
	}
	_ = time.Now()
	return float64(rand.Intn(n+1)) + math.Inf(1) + math.NaN()
}
