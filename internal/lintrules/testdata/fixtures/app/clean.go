// Package app is the out-of-scope fixture: it is not a scheduling
// package, so every construct the rules forbid elsewhere is legal here.
// No findings.
package app

import (
	"math"
	"math/rand"
	"time"
)

// Report uses all three forbidden constructs outside the rules' scope.
func Report(m map[string]int) float64 {
	n := 0
	for range m {
		n++
	}
	_ = time.Now()
	return float64(rand.Intn(n+1)) + math.Inf(1) + math.NaN()
}
