// Package worstcase is the globalrand true-positive fixture: the global
// math/rand functions and the wall clock are forbidden in scheduler
// packages.
package worstcase

import (
	"math/rand"
	"time"
)

// BreakTie picks with the global generator. One finding.
func BreakTie(n int) int {
	return rand.Intn(n) // want globalrand
}

// Stamp reads the wall clock inside the simulator. One finding.
func Stamp() int64 {
	return time.Now().UnixNano() // want globalrand
}

// Seeded builds an owned source from a seed — the constructors are the
// sanctioned path. No finding.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
