// Package worstcase is the globalrand/wallclock true-positive fixture:
// the global math/rand functions and the wall clock are forbidden in
// scheduler packages.
package worstcase

import (
	"math/rand"
	"time"
)

// BreakTie picks with the global generator. One finding.
func BreakTie(n int) int {
	return rand.Intn(n) // want globalrand
}

// Stamp reads the wall clock inside the simulator. One finding.
func Stamp() int64 {
	return time.Now().UnixNano() // want wallclock
}

// Seeded builds an owned source from a seed — the constructors are the
// sanctioned path, and drawing from the owned generator is a method
// call, not the global package function. // ok globalrand
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(100)
}

// Elapsed receives a timestamp instead of reading the clock — times
// thread through arguments and results. // ok wallclock
func Elapsed(start, now int64) int64 {
	return now - start
}
