// Package resultcache is the cache-scope fixture: content-addressed
// key construction is response-visible (two iteration orders hash to
// two different addresses for one semantic request), so the
// iteration-order rule covers it like the service layer — and the
// never-failing maphash writers stay exempt from errdrop.
package resultcache

import "hash/maphash"

// KeyFromFields hashes request fields in map iteration order — the
// exact bug the canonical KeyBuilder exists to prevent: the same
// request hashes differently run to run, silently splitting one cache
// entry into many. One finding; the maphash writes themselves are
// sanctioned discards (their contract guarantees a nil error).
func KeyFromFields(fields map[string]float64) uint64 {
	var h maphash.Hash
	for name, v := range fields { // want maprange
		h.WriteString(name) // ok errdrop
		h.WriteByte(byte(int(v)))
	}
	return h.Sum64()
}

// KeySorted hashes a caller-ordered slice — the sanctioned pattern.
// // ok maprange
func KeySorted(names []string, h *maphash.Hash) uint64 {
	for _, name := range names {
		h.WriteString(name)
	}
	return h.Sum64()
}
