// Purity scope fixture for the cache layer: resultcache is a purity
// entry point — its canonical keys must be pure — but with the wall
// clock sanctioned (TTLs and eviction clocks are real time).
package resultcache

import "lintfixtures/util"

// ExpiresAt reaches the wall clock through a helper: sanctioned here,
// where the same chain from a scheduler package is an error.
// // ok purity
func ExpiresAt() float64 {
	return util.WallElapsed()
}

// SeedFromGlobal reaches the global generator through a helper: the
// wall-clock sanction does not extend to randomness. One finding.
func SeedFromGlobal(n int) int {
	return util.Draw(n) // want purity
}
