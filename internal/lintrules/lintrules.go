// Package lintrules implements the determinism lint rules behind
// cmd/loggpvet: static checks that forbid the constructs able to
// desynchronize the simulators' reproducible schedules. The repository's
// guarantees — same seed ⇒ identical timeline, differential tests
// bit-identical across scheduler implementations, predictions stable
// across runs — are all dynamic properties with purely syntactic failure
// modes:
//
//   - maprange: ranging over a map in timeline-affecting code (the
//     scheduler cores, the event queue, the timeline) iterates in
//     randomized order, so any clock arithmetic or tie-break fed from the
//     iteration silently varies between runs.
//
//   - globalrand: the schedulers' randomness must flow from Config.Seed
//     through a locally owned rand source; the global math/rand functions
//     (and any reading of the wall clock — time.Now in a simulator that
//     OWNS virtual time is a category error) break replay.
//
//   - nonfinite: clock arithmetic must stay finite. math.Inf is a legal
//     sentinel (the schedulers use it for "no candidate") in assignments
//     and comparisons, but as an operand of +, -, * or / it yields Inf/NaN
//     clocks that propagate through every later max(); math.NaN() has no
//     legal use in simulator code at all (NaN even breaks the sentinel
//     comparisons).
//
// The rules are scoped by import path: a package is covered when its
// final path segment names a scheduling package (sim, worstcase, eventq,
// timeline) or a prediction-service package (serve, predictd) — the
// latter get the iteration-order and finiteness rules plus the
// owned-randomness rule, but not the wall-clock ban (a server's
// deadlines and Retry-After headers are real time). Test files are
// exempt — tests may range over maps to build inputs, and fuzzers use
// whatever randomness they like.
package lintrules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule names the rule that fired (maprange, globalrand, nonfinite).
	Rule string
	// Msg is the human-readable description.
	Msg string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Msg, f.Rule)
}

// timelinePkgs are the package names whose code constructs or orders the
// simulated timeline: map iteration order must not leak into them. The
// fault injector (faults) and the Monte-Carlo envelope sweep (robust)
// feed charges and seeds into the schedulers, so they are covered too,
// as is the lockstep lane engine (lanes), which re-implements both
// scheduler cores.
var timelinePkgs = map[string]bool{
	"sim": true, "worstcase": true, "eventq": true, "timeline": true,
	"faults": true, "robust": true, "lanes": true,
}

// schedulerPkgs are the package names that own virtual time and seeded
// randomness: the global RNG and the wall clock are forbidden there.
// faults and robust derive all randomness from hashes of Plan.Seed and
// sweep.Seed, and lanes owns per-lane tie-break streams, so the same
// prohibition applies.
var schedulerPkgs = map[string]bool{
	"sim": true, "worstcase": true, "eventq": true,
	"faults": true, "robust": true, "lanes": true,
}

// servicePkgs are the prediction-service layers (internal/serve,
// cmd/predictd) and their supporting machinery: the content-addressed
// result cache (resultcache), whose canonical key encodings must never
// be fed from map iteration order; the request-coalescing core
// (flight); and the load generator (loadgen), whose replayed workload
// must be reproducible from its seed. They sit above the schedulers but
// answer with (or address, or replay) their numbers, so the same
// syntactic hazards apply in weakened form: map iteration must not
// order anything response-visible, clock arithmetic must stay finite,
// and any randomness must flow from seeds through owned sources — but
// the wall clock is legitimate there (deadlines, Retry-After, latency
// measurement), so the time.Now ban does not apply.
var servicePkgs = map[string]bool{
	"serve": true, "predictd": true,
	"resultcache": true, "flight": true, "loadgen": true,
}

// randConstructors are the math/rand (and v2) functions that build a
// locally owned generator rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// pkgSegment returns the final segment of an import path.
func pkgSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Covered reports whether any rule applies to the package at all —
// callers can skip parsing and typechecking uncovered packages.
func Covered(pkgPath string) bool {
	seg := pkgSegment(pkgPath)
	return timelinePkgs[seg] || servicePkgs[seg]
}

// Run applies every rule to the typechecked package and returns the
// findings in file order. info must carry Types and Uses. Files whose
// position is in a _test.go file are skipped.
func Run(fset *token.FileSet, files []*ast.File, pkgPath string, info *types.Info) []Finding {
	seg := pkgSegment(pkgPath)
	// Rule scopes: the service layer shares the map-iteration and
	// finiteness hazards with the timeline packages and the owned-source
	// randomness requirement with the schedulers, but not the wall-clock
	// ban — a server legitimately reads real time.
	orderScope := timelinePkgs[seg] || servicePkgs[seg]
	randScope := schedulerPkgs[seg] || servicePkgs[seg]
	clockScope := schedulerPkgs[seg]
	var out []Finding
	add := func(pos token.Pos, rule, msg string) {
		out = append(out, Finding{Pos: fset.Position(pos), Rule: rule, Msg: msg})
	}
	// stdFunc resolves a call to a package-level function of a standard
	// package, returning its package path and name ("" for anything
	// else — methods in particular: rng.Intn on an owned *rand.Rand is
	// exactly the sanctioned pattern and must not match rand.Intn).
	stdFunc := func(call *ast.CallExpr) (pkg, name string) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", ""
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", ""
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "", ""
		}
		return fn.Pkg().Path(), fn.Name()
	}
	// infCall reports whether e (parens stripped) is a math.Inf or
	// math.NaN call.
	infCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		pkg, name := stdFunc(call)
		return pkg == "math" && (name == "Inf" || name == "NaN")
	}

	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if !orderScope {
					return true
				}
				tv, ok := info.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					add(n.Pos(), "maprange",
						"range over map in timeline-affecting code: iteration order is randomized and desynchronizes reproducible schedules; iterate a sorted slice instead")
				}
			case *ast.CallExpr:
				pkg, name := stdFunc(n)
				switch {
				case randScope && (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
					add(n.Pos(), "globalrand",
						fmt.Sprintf("%s.%s uses the global generator: scheduler randomness must flow from Config.Seed through an owned source", pkgSegment(pkg), name))
				case clockScope && pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
					add(n.Pos(), "globalrand",
						fmt.Sprintf("time.%s reads the wall clock inside a simulator that owns virtual time; thread times through clocks and results", name))
				case orderScope && pkg == "math" && name == "NaN":
					add(n.Pos(), "nonfinite",
						"math.NaN() in clock-arithmetic code: NaN poisons every max/min and comparison downstream")
				}
			case *ast.BinaryExpr:
				if !orderScope {
					return true
				}
				switch n.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if infCall(n.X) || infCall(n.Y) {
						add(n.Pos(), "nonfinite",
							"math.Inf as an arithmetic operand yields non-finite clocks; Inf is legal only as an assigned or compared sentinel")
					}
				}
			}
			return true
		})
	}
	return out
}
