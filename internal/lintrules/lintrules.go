// Package lintrules implements the determinism certification rules
// behind cmd/loggpvet: a multi-analyzer static suite that enforces the
// repository's determinism contract — same seed ⇒ identical timeline,
// differential tests bit-identical across scheduler implementations,
// content-addressed cache keys stable across runs — whose failure modes
// are purely syntactic and therefore machine-checkable.
//
// The suite has three layers:
//
//   - Single-pass rules, applied per file under the per-package policy
//     table (policy.go): maprange, globalrand, wallclock, nonfinite,
//     ctxpoll, poolpoison, floatorder, errdrop. Each rule's full
//     rationale lives in explain.go (`loggpvet -explain <rule>`).
//
//   - A conservative interprocedural purity analysis (purity.go): an
//     intra-module call graph built from go/types resolution, with
//     per-package summaries ("facts") carried between packages through
//     the vet driver's .vetx files, so a scheduler entry point calling
//     a helper package that reads the wall clock three calls down is
//     reported with the full call chain.
//
//   - A checked-in baseline (baseline.go): pre-existing sanctioned
//     findings are pinned by (package, rule, file, count) — removed or
//     fixed findings make their baseline entries stale and fail the
//     lint run, so the baseline can only shrink, never silently rot.
//
// Test files are exempt from the single-pass rules — tests may range
// over maps to build inputs and use whatever randomness they like — but
// still contribute nothing to purity facts (only declared functions in
// non-test files enter the call graph).
package lintrules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	// Pos locates the violation.
	Pos token.Position `json:"pos"`
	// Rule names the rule family that fired.
	Rule string `json:"rule"`
	// Msg is the human-readable description.
	Msg string `json:"msg"`
	// Chain, for purity findings, is the rendered call chain from the
	// entry-point function to the forbidden source, one frame per
	// element.
	Chain []string `json:"chain,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Msg, f.Rule)
}

// Pass is one package's analysis input.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	// Module is the module prefix used to resolve the policy table
	// ("loggpsim" for the repository; the fixture modules pass their
	// own).
	Module string
	// Info must carry Types, Uses and Defs.
	Info *types.Info
	// DepFacts returns the purity facts of a direct in-module
	// dependency, or nil when unknown. May itself be nil (purity then
	// sees only intra-package chains).
	DepFacts func(pkgPath string) *PackageFacts
}

// Analyze applies every applicable rule to the typechecked package and
// returns the findings in file/position order plus the package's purity
// facts (for the vet driver to persist; never nil).
func Analyze(p *Pass) ([]Finding, *PackageFacts) {
	pol := PolicyFor(ModuleRel(p.PkgPath, p.Module))
	var out []Finding
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		out = append(out, checkFile(p, pol, f)...)
	}
	facts, pure := analyzePurity(p, pol)
	out = append(out, pure...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, facts
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// calleeFunc resolves a call to the *types.Func it invokes (package
// function or method), or nil for builtins, conversions, and calls of
// function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// stdFunc resolves a call to a package-level function, returning its
// package path and name ("" for anything else — methods in particular:
// rng.Intn on an owned *rand.Rand is exactly the sanctioned pattern and
// must not match rand.Intn).
func stdFunc(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// randConstructors are the math/rand (and v2) functions that build a
// locally owned generator rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}
