package lintrules

// Conservative interprocedural purity analysis. Every module package
// gets a summary ("facts"): for each declared function, the call chain
// — if any — from it to a forbidden determinism source. Summaries
// travel between packages through the vet driver's .vetx files
// (cmd/loggpvet serializes PackageFacts as JSON), so by the time an
// entry-point package (policy.PurityEntry) is analyzed, a call into a
// helper package that reads the wall clock three calls down is visible
// with the full chain.
//
// The call graph is deliberately conservative in the *sound-for-what-
// it-claims* direction: it covers static calls only — direct calls to
// package functions and methods resolved by go/types. Calls through
// function values, interface methods, and goroutine entry literals are
// not edges (a reported chain is therefore always a real syntactic
// path; absence of a report is not a purity proof). DESIGN.md §5j
// records the trade-off.
//
// Forbidden sources:
//
//	wallclock  time.Now / time.Since / time.Until
//	globalrand package-level math/rand and math/rand/v2 (constructors excepted)
//	env        os.Getenv / os.LookupEnv / os.Environ
//	mapiter    a map range whose iteration escapes (return, channel send,
//	           append or indexed write to an outer collection) without a
//	           subsequent sort of the collected values
//
// A finding is emitted only at the package boundary: the entry-package
// function whose chain's first hop leaves the package (direct sources
// inside entry packages are the single-pass rules' job — except env,
// which has no single-pass rule and is reported directly).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TaintStep is one frame of a purity chain: a call (or, on the last
// step, the forbidden source itself) and its position.
type TaintStep struct {
	Desc string `json:"desc"`
	Pos  string `json:"pos"`
}

// Taint records one forbidden-source kind reachable from a function,
// with the (first discovered, deterministic) call chain to it.
type Taint struct {
	// Kind is one of wallclock, globalrand, env, mapiter.
	Kind string `json:"kind"`
	// Chain leads from the function's own body to the source; the last
	// step is the source.
	Chain []TaintStep `json:"chain"`
	// local: the source is lexically inside the package that owns this
	// taint (not serialized — consumers re-derive their own locality).
	local bool
	// boundary: the first hop of the chain is a call into another
	// package (derived from dependency facts).
	boundary bool
}

// PackageFacts is the serializable purity summary of one package.
type PackageFacts struct {
	Version int `json:"version"`
	// Taints maps a function's full name — "pkg.Func" or
	// "(pkg.Recv).Method" — to its taints, sorted by Kind.
	Taints map[string][]Taint `json:"taints,omitempty"`
}

// FactsVersion guards the .vetx wire format; bump on incompatible
// change (cmd/loggpvet folds it into its -V=full fingerprint so the
// vet cache never mixes formats).
const FactsVersion = 1

// kindDesc renders a source kind for diagnostics.
func kindDesc(kind string) string {
	switch kind {
	case "wallclock":
		return "the wall clock"
	case "globalrand":
		return "the global math/rand generator"
	case "env":
		return "the process environment"
	case "mapiter":
		return "order-escaping map iteration"
	}
	return kind
}

// fnInfo is one declared function during the intra-package fixed point.
type fnInfo struct {
	fn     *types.Func
	name   string // FullName
	decl   *ast.FuncDecl
	taints map[string]*Taint // kind → chain
}

// analyzePurity computes the package's facts and, for entry-point
// packages, the boundary findings.
func analyzePurity(p *Pass, pol Policy) (*PackageFacts, []Finding) {
	posOf := func(pos token.Pos) string { return p.Fset.Position(pos).String() }

	// Collect declared functions (non-test files only) in file order.
	var fns []*fnInfo
	byObj := map[*types.Func]*fnInfo{}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{fn: fn, name: fn.FullName(), decl: decl, taints: map[string]*Taint{}}
			fns = append(fns, fi)
			byObj[fn] = fi
		}
	}

	// Direct sources and cross-package edges: one scan per function.
	type edge struct {
		caller *fnInfo
		callee *fnInfo // intra-package target
		pos    token.Pos
		desc   string
	}
	var edges []edge
	for _, fi := range fns {
		fi := fi
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && mapIterEscapes(p.Info, fi.decl.Body, n) {
						fi.addTaint("mapiter", Taint{
							Kind:  "mapiter",
							Chain: []TaintStep{{Desc: "map iteration escapes into ordering-sensitive values", Pos: posOf(n.Pos())}},
							local: true,
						})
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					// Methods: only intra-module declared methods can be
					// edges; stdlib sources are all package functions.
					if target, ok := byObj[fn]; ok {
						edges = append(edges, edge{fi, target, n.Pos(), "calls " + fn.FullName()})
					} else if df := depTaints(p, fn); df != nil {
						fi.deriveFromDep(fn, df, posOf(n.Pos()))
					}
					return true
				}
				pkg, name := fn.Pkg().Path(), fn.Name()
				switch {
				case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
					fi.addTaint("wallclock", Taint{Kind: "wallclock",
						Chain: []TaintStep{{Desc: "time." + name + " (wall clock)", Pos: posOf(n.Pos())}}, local: true})
				case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
					fi.addTaint("globalrand", Taint{Kind: "globalrand",
						Chain: []TaintStep{{Desc: pkgSegment(pkg) + "." + name + " (global generator)", Pos: posOf(n.Pos())}}, local: true})
				case pkg == "os" && (name == "Getenv" || name == "LookupEnv" || name == "Environ"):
					fi.addTaint("env", Taint{Kind: "env",
						Chain: []TaintStep{{Desc: "os." + name + " (process environment)", Pos: posOf(n.Pos())}}, local: true})
				default:
					if target, ok := byObj[fn]; ok {
						edges = append(edges, edge{fi, target, n.Pos(), "calls " + fn.FullName()})
					} else if df := depTaints(p, fn); df != nil {
						fi.deriveFromDep(fn, df, posOf(n.Pos()))
					}
				}
			}
			return true
		})
	}

	// Intra-package fixed point: propagate callee taints to callers
	// until stable. Edges are in deterministic (file, position) order,
	// so the first-discovered chain for each (function, kind) is stable
	// run to run.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			for _, kind := range sortedKinds(e.callee.taints) {
				t := e.callee.taints[kind]
				if _, ok := e.caller.taints[kind]; ok {
					continue
				}
				chain := append([]TaintStep{{Desc: e.desc, Pos: posOf(e.pos)}}, t.Chain...)
				e.caller.taints[kind] = &Taint{Kind: kind, Chain: chain, local: t.local}
				changed = true
			}
		}
	}

	// Serialize facts.
	facts := &PackageFacts{Version: FactsVersion}
	for _, fi := range fns {
		if len(fi.taints) == 0 {
			continue
		}
		if facts.Taints == nil {
			facts.Taints = map[string][]Taint{}
		}
		var ts []Taint
		for _, kind := range sortedKinds(fi.taints) {
			ts = append(ts, *fi.taints[kind])
		}
		facts.Taints[fi.name] = ts
	}

	// Boundary findings for entry-point packages.
	var out []Finding
	if pol.PurityEntry {
		for _, fi := range fns {
			for _, kind := range sortedKinds(fi.taints) {
				t := fi.taints[kind]
				if kind == "wallclock" && pol.PuritySanctionsWallClock {
					continue
				}
				direct := t.local && len(t.Chain) == 1
				if !t.boundary && !(direct && kind == "env") {
					// Direct wallclock/globalrand/mapiter inside an entry
					// package is the single-pass rules' report;
					// intra-package transitive chains are reported at the
					// function that actually crosses the boundary (or
					// holds the direct source).
					continue
				}
				frames := make([]string, 0, len(t.Chain)+1)
				frames = append(frames, fi.name)
				for _, step := range t.Chain {
					frames = append(frames, fmt.Sprintf("%s (%s)", step.Desc, step.Pos))
				}
				pos := t.Chain[0].Pos
				out = append(out, Finding{
					Pos:   parsePosition(pos),
					Rule:  "purity",
					Msg:   fmt.Sprintf("%s reaches %s: %s", fi.name, kindDesc(kind), strings.Join(frames, " → ")),
					Chain: frames,
				})
			}
		}
	}
	return facts, out
}

func (fi *fnInfo) addTaint(kind string, t Taint) {
	if _, ok := fi.taints[kind]; !ok {
		fi.taints[kind] = &t
	}
}

// deriveFromDep folds a dependency function's taints into the caller.
func (fi *fnInfo) deriveFromDep(fn *types.Func, ts []Taint, callPos string) {
	for _, t := range ts {
		if _, ok := fi.taints[t.Kind]; ok {
			continue
		}
		chain := append([]TaintStep{{Desc: "calls " + fn.FullName(), Pos: callPos}}, t.Chain...)
		fi.taints[t.Kind] = &Taint{Kind: t.Kind, Chain: chain, boundary: true}
	}
}

// depTaints looks up the facts of an in-module dependency function.
func depTaints(p *Pass, fn *types.Func) []Taint {
	if p.DepFacts == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path == p.PkgPath {
		return nil
	}
	if path != p.Module && !strings.HasPrefix(path, p.Module+"/") {
		return nil
	}
	facts := p.DepFacts(path)
	if facts == nil {
		return nil
	}
	return facts.Taints[fn.FullName()]
}

func sortedKinds(m map[string]*Taint) []string {
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// parsePosition rebuilds a token.Position from its file:line:col string
// form (facts carry positions as strings so they survive serialization
// across packages with unrelated FileSets).
func parsePosition(s string) token.Position {
	pos := token.Position{Filename: s}
	// Split from the right: the filename may contain colons on other
	// platforms, line and column never do.
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		if j := strings.LastIndexByte(s[:i], ':'); j >= 0 {
			var line, col int
			if _, err := fmt.Sscanf(s[j+1:], "%d:%d", &line, &col); err == nil {
				pos.Filename, pos.Line, pos.Column = s[:j], line, col
			}
		}
	}
	return pos
}

// sortingFuncs are the stdlib calls that impose a deterministic order
// on their first argument, discharging a collect-then-sort append.
var sortingFuncs = map[string]bool{
	"sort.Sort": true, "sort.Stable": true,
	"sort.Slice": true, "sort.SliceStable": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// mapIterEscapes is the conservative escape heuristic for map ranges:
// the iteration order is deemed to reach ordering-sensitive values when
// the loop body returns, sends on a channel, writes through an index
// into an outer slice or array, or appends to an outer slice that is
// never subsequently sorted in the same function. Writes to outer maps
// and scalar counters stay exempt (order-insensitive), as does the
// collect-then-sort idiom.
func mapIterEscapes(info *types.Info, fnBody *ast.BlockStmt, loop *ast.RangeStmt) bool {
	outer := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil || (obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()) {
			return nil
		}
		return obj
	}
	escapes := false
	var appended []types.Object
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt, *ast.SendStmt:
			escapes = true
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					// s[i] = v into an outer slice/array is order-exposed
					// when i varies with iteration; writes into maps are
					// keyed, hence order-free.
					if obj := outer(l.X); obj != nil {
						if _, isMap := obj.Type().Underlying().(*types.Map); !isMap {
							escapes = true
						}
					}
				case *ast.Ident:
					// x = append(x, ...) collection building.
					if i < len(n.Rhs) {
						if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
							if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
								if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
									if obj := outer(l); obj != nil {
										appended = append(appended, obj)
									}
									continue
								}
							}
						}
					}
					// String concatenation onto an outer string.
					if n.Tok == token.ADD_ASSIGN {
						if obj := outer(l); obj != nil {
							if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
								escapes = true
							}
						}
					}
				}
			}
		}
		return !escapes
	})
	if escapes {
		return true
	}
	if len(appended) == 0 {
		return false
	}
	// Collect-then-sort suppression: each appended collection must be
	// sorted somewhere in the same function.
	sorted := map[types.Object]bool{}
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, name := stdFunc(info, call)
		if !sortingFuncs[pkg+"."+name] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	for _, obj := range appended {
		if !sorted[obj] {
			return true
		}
	}
	return false
}
