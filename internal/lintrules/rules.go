package lintrules

// The single-pass rule families. Each operates on one non-test file
// under the package's policy; purity (purity.go) is the only
// interprocedural rule.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkFile applies every enabled single-pass rule to one file.
func checkFile(p *Pass, pol Policy, f *ast.File) []Finding {
	var out []Finding
	add := func(pos token.Pos, rule, msg string) {
		out = append(out, Finding{Pos: p.Fset.Position(pos), Rule: rule, Msg: msg})
	}

	// deferSpans pre-collects the source extent of every defer
	// statement so errdrop can exempt cleanup paths.
	var deferSpans [][2]token.Pos
	if pol.ErrDrop {
		ast.Inspect(f, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferSpans = append(deferSpans, [2]token.Pos{d.Pos(), d.End()})
			}
			return true
		})
	}
	inDefer := func(pos token.Pos) bool {
		for _, s := range deferSpans {
			if pos >= s[0] && pos < s[1] {
				return true
			}
		}
		return false
	}

	// infCall reports whether e (parens stripped) is a math.Inf or
	// math.NaN call.
	infCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		pkg, name := stdFunc(p.Info, call)
		return pkg == "math" && (name == "Inf" || name == "NaN")
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			_, isMap := tv.Type.Underlying().(*types.Map)
			_, isChan := tv.Type.Underlying().(*types.Chan)
			if isMap && pol.MapRange {
				add(n.Pos(), "maprange",
					"range over map in timeline-affecting code: iteration order is randomized and desynchronizes reproducible schedules; iterate a sorted slice instead")
			}
			if pol.FloatOrder && (isMap || isChan) {
				src := "map iteration order"
				if isChan {
					src = "goroutine completion order"
				}
				for _, acc := range floatAccumulations(p.Info, n) {
					add(acc, "floatorder", fmt.Sprintf(
						"float accumulation over %s: floating-point addition is not associative, so the result depends on an order that varies between runs; accumulate over a sorted slice instead", src))
				}
			}
		case *ast.CallExpr:
			pkg, name := stdFunc(p.Info, n)
			switch {
			case pol.OwnedRand && (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
				add(n.Pos(), "globalrand",
					fmt.Sprintf("%s.%s uses the global generator: scheduler randomness must flow from Config.Seed through an owned source", pkgSegment(pkg), name))
			case pol.WallClock && pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
				add(n.Pos(), "wallclock",
					fmt.Sprintf("time.%s reads the wall clock inside a simulator that owns virtual time; thread times through clocks and results", name))
			case pol.NonFinite && pkg == "math" && name == "NaN":
				add(n.Pos(), "nonfinite",
					"math.NaN() in clock-arithmetic code: NaN poisons every max/min and comparison downstream")
			}
		case *ast.BinaryExpr:
			if !pol.NonFinite {
				return true
			}
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if infCall(n.X) || infCall(n.Y) {
					add(n.Pos(), "nonfinite",
						"math.Inf as an arithmetic operand yields non-finite clocks; Inf is legal only as an assigned or compared sentinel")
				}
			}
		case *ast.ExprStmt:
			if !pol.ErrDrop {
				return true
			}
			call, ok := n.X.(*ast.CallExpr)
			if !ok || inDefer(n.Pos()) || errDropExempt(p.Info, call) {
				return true
			}
			if returnsError(p.Info, call) {
				add(n.Pos(), "errdrop",
					"call discards an error result in a serve/cache path: a swallowed error becomes a wrong or missing response; handle it, or assign it to _ to acknowledge the discard")
			}
		case *ast.FuncDecl:
			checkFuncRules(p, pol, n.Body, n.Type, add)
		case *ast.FuncLit:
			checkFuncRules(p, pol, n.Body, n.Type, add)
		}
		return true
	})
	return out
}

// checkFuncRules applies the function-scoped families (ctxpoll,
// poolpoison) to one function body. Nested function literals are
// visited again by the outer Inspect, so each body is checked exactly
// once with its own parameter list; ctxpoll additionally looks through
// to enclosing contexts via the Uses map (an inner literal referencing
// the outer ctx identifier still counts as polling).
func checkFuncRules(p *Pass, pol Policy, body *ast.BlockStmt, ftype *ast.FuncType, add func(token.Pos, string, string)) {
	if body == nil {
		return
	}
	if pol.CtxPoll {
		for _, ctx := range ctxParams(p.Info, ftype) {
			checkCtxPoll(p, ctx, body, add)
		}
	}
	if pol.PoolPoison {
		checkPoolPoison(p, body, add)
	}
}

// ctxParams returns the context.Context parameter objects of a
// function type.
func ctxParams(info *types.Info, ftype *ast.FuncType) []types.Object {
	var out []types.Object
	if ftype == nil || ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && types.TypeString(obj.Type(), nil) == "context.Context" {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkCtxPoll reports unbounded (condition-less) for-loops in a
// deadline-scoped function — one that received a context — whose body
// never references that context: such a loop outlives every deadline
// the caller set. The walk stops at nested function literals; a
// literal with its own context parameter is its own deadline scope,
// and one capturing the outer ctx is checked when the outer Inspect
// reaches it... (captured contexts resolve through Uses to the same
// object, so referencing the outer ctx inside the loop still counts).
func checkCtxPoll(p *Pass, ctx types.Object, body *ast.BlockStmt, add func(token.Pos, string, string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		polls := false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == ctx {
				polls = true
			}
			return !polls
		})
		if !polls {
			add(loop.Pos(), "ctxpoll",
				fmt.Sprintf("unbounded for-loop in a deadline-scoped evaluator never polls %s: the loop outlives the caller's deadline; select on %s.Done() or check %s.Err() each iteration", ctx.Name(), ctx.Name(), ctx.Name()))
		}
		return true
	})
}

// checkPoolPoison reports a sync.Pool.Put lexically inside a function
// body that also calls recover(): an object reclaimed on a panic path
// was mid-operation when the panic unwound, and repooling it hands
// corrupt state to an unrelated later caller. The scan excludes nested
// function literals — each literal is its own recovery scope and is
// checked separately.
func checkPoolPoison(p *Pass, body *ast.BlockStmt, add func(token.Pos, string, string)) {
	recovers := false
	var puts []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				recovers = true
			}
		}
		if fn := calleeFunc(p.Info, call); fn != nil && fn.FullName() == "(*sync.Pool).Put" {
			puts = append(puts, call.Pos())
		}
		return true
	})
	if recovers {
		for _, pos := range puts {
			add(pos, "poolpoison",
				"sync.Pool.Put on a recovery path: an object reclaimed after a panic was mid-operation and may hold corrupt state — poison (drop) it and let the pool construct a fresh one")
		}
	}
}

// floatAccumulations returns the positions of float accumulation
// statements (x += v, x -= v, x *= v, x /= v, or x = x + v and
// friends) inside a range body where x is float-typed and declared
// outside the loop — the shape whose result depends on iteration
// order.
func floatAccumulations(info *types.Info, loop *ast.RangeStmt) []token.Pos {
	var out []token.Pos
	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := info.Uses[id]
		if obj == nil {
			return nil, false
		}
		if obj.Pos() >= loop.Body.Pos() && obj.Pos() < loop.Body.End() {
			return nil, false
		}
		basic, ok := obj.Type().Underlying().(*types.Basic)
		return obj, ok && basic.Info()&types.IsFloat != 0
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if _, ok := declaredOutside(as.Lhs[0]); ok {
				out = append(out, as.Pos())
			}
		case token.ASSIGN:
			// x = x + v (any arithmetic mentioning x on the right).
			obj, ok := declaredOutside(as.Lhs[0])
			if !ok {
				return true
			}
			mentions := false
			ast.Inspect(as.Rhs[0], func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				out = append(out, as.Pos())
			}
		}
		return true
	})
	return out
}

// returnsError reports whether a call's result includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		return types.TypeString(t, nil) == "error"
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErr(t)
	}
}

// errDropExempt reports the sanctioned error discards: the fmt print
// family (errors there mean a broken io.Writer the caller cannot act
// on) and the never-failing writers (strings.Builder, bytes.Buffer,
// hash.Hash and hash/maphash, whose Write contracts guarantee a nil
// error). The writers are matched on the static type of the receiver
// expression — a hash.Hash field's Write resolves to the embedded
// io.Writer method, so the declared receiver would be useless here.
func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	name := types.TypeString(tv.Type, nil)
	name = strings.TrimPrefix(name, "*")
	switch name {
	case "strings.Builder", "bytes.Buffer", "hash/maphash.Hash",
		"hash.Hash", "hash.Hash32", "hash.Hash64":
		return true
	}
	return false
}
