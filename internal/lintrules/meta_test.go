package lintrules_test

// Fixture and policy discipline: these tests fail when the suite grows
// a rule without fixtures proving both that it fires and that its
// sanctioned idiom stays silent, or when the repository grows a
// package the policy table never heard of — a silent scope gap is
// exactly the failure mode a determinism certifier must not have.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loggpsim/internal/lintrules"
)

var repoRoot = filepath.Join("..", "..")

// TestEveryRuleHasFixtures: every registered rule needs at least one
// true-positive (`// want`) and one true-negative (`// ok`) fixture.
// The baseline rule is the one exception — its positive/negative pair
// is the stale/pinned baseline of the cmd/loggpvet e2e module, checked
// below by existence and exercised by the e2e tests.
func TestEveryRuleHasFixtures(t *testing.T) {
	want, okCount := fixtureMarkers(t)
	wantCount := map[string]int{}
	for _, rules := range want {
		for _, r := range rules {
			wantCount[r]++
		}
	}
	for _, r := range lintrules.Rules() {
		if r.Name == "baseline" {
			for _, f := range []string{"lint.baseline.json", "stale.baseline.json"} {
				p := filepath.Join(repoRoot, "cmd", "loggpvet", "testdata", "baselinemod", f)
				if _, err := os.Stat(p); err != nil {
					t.Errorf("baseline rule fixture missing: %v", err)
				}
			}
			continue
		}
		if wantCount[r.Name] == 0 {
			t.Errorf("rule %s has no `// want %s` true-positive fixture", r.Name, r.Name)
		}
		if okCount[r.Name] == 0 {
			t.Errorf("rule %s has no `// ok %s` true-negative fixture", r.Name, r.Name)
		}
	}
	for name := range wantCount {
		if _, ok := lintrules.Explain(name); !ok {
			t.Errorf("fixture marker names unregistered rule %q", name)
		}
	}
	for name := range okCount {
		if _, ok := lintrules.Explain(name); !ok {
			t.Errorf("fixture marker names unregistered rule %q", name)
		}
	}
}

// goPackageDirs returns the module-relative paths of every directory
// under root (itself module-relative) holding non-test Go files,
// skipping testdata trees.
func goPackageDirs(t *testing.T, root string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(filepath.Join(repoRoot, root), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(repoRoot, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if len(out) == 0 || out[len(out)-1] != rel {
			out = append(out, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPolicyTableCoversRepo: every internal/ package must have an
// EXPLICIT policy entry (the segment fallback exists for the fixture
// modules, not for the repository itself), and every package anywhere
// in the module must at least be Covered by the repo-wide floor.
func TestPolicyTableCoversRepo(t *testing.T) {
	policies := lintrules.Policies()
	for _, rel := range goPackageDirs(t, "internal") {
		if _, ok := policies[rel]; !ok {
			t.Errorf("internal package %s has no explicit policy entry — add it to the table in policy.go", rel)
		}
	}
	for _, root := range []string{"internal", "cmd", "."} {
		for _, rel := range goPackageDirs(t, root) {
			if !lintrules.Covered(rel) {
				t.Errorf("package %s is not covered by any policy", rel)
			}
		}
	}
}

// TestPolicyKeysExist: the inverse direction — a table entry whose
// directory was deleted or renamed is dead weight that misleads
// readers about scope.
func TestPolicyKeysExist(t *testing.T) {
	for key := range lintrules.Policies() {
		info, err := os.Stat(filepath.Join(repoRoot, filepath.FromSlash(key)))
		if err != nil || !info.IsDir() {
			t.Errorf("policy table entry %q does not name a repository directory", key)
		}
	}
}

// TestExplainRegistry: -explain must have substantive text for every
// rule, and reject unknown names.
func TestExplainRegistry(t *testing.T) {
	rules := lintrules.Rules()
	if len(rules) < 10 {
		t.Fatalf("rule registry has %d rules, want at least 10", len(rules))
	}
	for _, r := range rules {
		if r.Short == "" || len(r.Doc) < 100 {
			t.Errorf("rule %s: Short and a substantive Doc are required (doc is %d bytes)", r.Name, len(r.Doc))
		}
		got, ok := lintrules.Explain(r.Name)
		if !ok || got.Doc != r.Doc {
			t.Errorf("Explain(%q) does not round-trip the registry", r.Name)
		}
	}
	if _, ok := lintrules.Explain("notarule"); ok {
		t.Error("Explain accepted an unknown rule name")
	}
}
