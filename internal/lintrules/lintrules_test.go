package lintrules

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// expectation is one "// want <rule>" marker in a fixture file.
type expectation struct {
	file string
	line int
	rule string
}

func (e expectation) String() string { return fmt.Sprintf("%s:%d %s", e.file, e.line, e.rule) }

// loadExpectations scans a fixture file for want markers.
func loadExpectations(t *testing.T, path string) []expectation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []expectation
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if _, rule, ok := strings.Cut(sc.Text(), "// want "); ok {
			out = append(out, expectation{file: filepath.Base(path), line: line, rule: strings.TrimSpace(rule)})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// checkFixture typechecks one fixture package from source and asserts
// the rules report exactly its want markers. includeTests controls
// whether _test.go files are loaded (they must stay silent even when
// loaded — the engine skips them by filename).
func checkFixture(t *testing.T, dir, pkgPath string, includeTests bool) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var want []expectation
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		if !strings.HasSuffix(e.Name(), "_test.go") {
			want = append(want, loadExpectations(t, path)...)
		}
	}
	// The fixtures import only the standard library, which the source
	// importer typechecks from $GOROOT/src — no build artifacts needed.
	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	if _, err := tc.Check(pkgPath, fset, files, info); err != nil {
		t.Fatalf("typecheck %s: %v", pkgPath, err)
	}

	var got []expectation
	for _, f := range Run(fset, files, pkgPath, info) {
		got = append(got, expectation{
			file: filepath.Base(f.Pos.Filename), line: f.Pos.Line, rule: f.Rule,
		})
	}
	key := func(e expectation) string { return e.String() }
	slices.SortFunc(got, func(a, b expectation) int { return strings.Compare(key(a), key(b)) })
	slices.SortFunc(want, func(a, b expectation) int { return strings.Compare(key(a), key(b)) })
	if !slices.Equal(got, want) {
		t.Fatalf("%s:\n got  %v\n want %v", pkgPath, got, want)
	}
}

func TestRulesOnFixtures(t *testing.T) {
	fixtures := filepath.Join("testdata", "fixtures")
	for _, tc := range []struct {
		dir, pkgPath string
		includeTests bool
	}{
		{"sim", "lintfixtures/sim", true}, // _test.go loaded and must stay exempt
		{"worstcase", "lintfixtures/worstcase", false},
		{"eventq", "lintfixtures/eventq", false},
		{"lanes", "lintfixtures/lanes", false}, // lockstep engine: all three rule families
		{"serve", "lintfixtures/serve", false}, // service scope: no wall-clock ban
		{"app", "lintfixtures/app", false},     // out of scope: no findings despite all constructs
	} {
		t.Run(tc.dir, func(t *testing.T) {
			checkFixture(t, filepath.Join(fixtures, tc.dir), tc.pkgPath, tc.includeTests)
		})
	}
}

func TestCovered(t *testing.T) {
	for path, want := range map[string]bool{
		"loggpsim/internal/sim":       true,
		"loggpsim/internal/worstcase": true,
		"loggpsim/internal/eventq":    true,
		"loggpsim/internal/timeline":  true,
		"loggpsim/internal/lanes":     true,
		"loggpsim/internal/analyze":   false,
		"loggpsim/internal/serve":     true,
		"loggpsim/cmd/predictd":       true,
		"loggpsim/internal/trace":     false,
		"sim":                         true,
		"lintfixtures/app":            false,
	} {
		if got := Covered(path); got != want {
			t.Errorf("Covered(%q) = %v, want %v", path, got, want)
		}
	}
}
