package lintrules_test

// The fixture driver: typechecks every package of the lintfixtures
// module under testdata/fixtures in dependency order (util, the purity
// helper, first), threads purity facts between packages through the
// same JSON wire format cmd/loggpvet writes into .vetx files, and
// checks Analyze's findings against the `// want <rule>` markers in
// the fixture sources — exactly, in both directions, so an `// ok`
// construct that starts firing fails the test just as loudly as a
// `// want` that goes silent.

import (
	"encoding/json"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"loggpsim/internal/lintrules"
)

const fixtureModule = "lintfixtures"

var fixtureRoot = filepath.Join("testdata", "fixtures")

// fixtureImporter resolves the fixture module's own packages from the
// already-typechecked set and everything else from source (the test
// environment has no compiled export data to hand).
type fixtureImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (im fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	return im.std.Import(path)
}

// fixtureDirs lists the fixture packages with util first: it is the
// dependency every purity fixture imports, so its facts must exist
// before its importers are analyzed — the same topological constraint
// the vet driver discharges via .vetx files.
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{"util"}
	for _, e := range entries {
		if e.IsDir() && e.Name() != "util" {
			dirs = append(dirs, e.Name())
		}
	}
	return dirs
}

// analyzeFixtures runs Analyze over every fixture package and returns
// findings keyed by package directory. Purity facts cross package
// boundaries only after a JSON round-trip, mirroring the vetx wire.
func analyzeFixtures(t *testing.T) map[string][]lintrules.Finding {
	t.Helper()
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	pkgs := map[string]*types.Package{}
	factsWire := map[string][]byte{}
	results := map[string][]lintrules.Finding{}

	for _, dir := range fixtureDirs(t) {
		names, err := filepath.Glob(filepath.Join(fixtureRoot, dir, "*.go"))
		if err != nil || len(names) == 0 {
			t.Fatalf("fixture package %s: %v (files: %d)", dir, err, len(names))
		}
		sort.Strings(names)
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		}
		pkgPath := fixtureModule + "/" + dir
		conf := types.Config{Importer: fixtureImporter{std: std, pkgs: pkgs}}
		pkg, err := conf.Check(pkgPath, fset, files, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", pkgPath, err)
		}
		findings, facts := lintrules.Analyze(&lintrules.Pass{
			Fset:    fset,
			Files:   files,
			PkgPath: pkgPath,
			Module:  fixtureModule,
			Info:    info,
			DepFacts: func(dep string) *lintrules.PackageFacts {
				wire, ok := factsWire[dep]
				if !ok {
					return nil
				}
				var f lintrules.PackageFacts
				if err := json.Unmarshal(wire, &f); err != nil || f.Version != lintrules.FactsVersion {
					return nil
				}
				return &f
			},
		})
		wire, err := json.Marshal(facts)
		if err != nil {
			t.Fatal(err)
		}
		factsWire[pkgPath] = wire
		pkgs[pkgPath] = pkg
		results[dir] = findings
	}
	return results
}

var (
	wantMarker = regexp.MustCompile(`// want ([a-z]+)`)
	okMarker   = regexp.MustCompile(`// ok ([a-z]+)`)
)

// fixtureMarkers scans every fixture source for markers, returning
// file:line → rules for `// want` and a per-rule count for `// ok`.
func fixtureMarkers(t *testing.T) (want map[string][]string, okCount map[string]int) {
	t.Helper()
	want = map[string][]string{}
	okCount = map[string]int{}
	err := filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(fixtureRoot, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
				key := filepath.ToSlash(rel) + ":" + strconv.Itoa(i+1)
				want[key] = append(want[key], m[1])
			}
			for _, m := range okMarker.FindAllStringSubmatch(line, -1) {
				okCount[m[1]]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want, okCount
}

// TestFixtureMarkers is the exact two-way check: every `// want`
// marker must produce a finding of that rule at that line, and every
// finding must be covered by a marker — so the `// ok` constructs are
// verified silent for free.
func TestFixtureMarkers(t *testing.T) {
	results := analyzeFixtures(t)
	want, _ := fixtureMarkers(t)

	got := map[string][]string{}
	for _, findings := range results {
		for _, f := range findings {
			rel, err := filepath.Rel(fixtureRoot, f.Pos.Filename)
			if err != nil || strings.HasPrefix(rel, "..") {
				t.Errorf("finding outside the fixture tree: %s", f)
				continue
			}
			key := filepath.ToSlash(rel) + ":" + strconv.Itoa(f.Pos.Line)
			got[key] = append(got[key], f.Rule)
		}
	}

	has := func(m map[string][]string, key, rule string) bool {
		for _, r := range m[key] {
			if r == rule {
				return true
			}
		}
		return false
	}
	for key, rules := range want {
		for _, rule := range rules {
			if !has(got, key, rule) {
				t.Errorf("%s: marked `// want %s` but the rule did not fire", key, rule)
			}
		}
	}
	for key, rules := range got {
		for _, rule := range rules {
			if !has(want, key, rule) {
				t.Errorf("%s: unexpected %s finding (no `// want %s` marker)", key, rule, rule)
			}
		}
	}
}

// TestPurityChains pins the interprocedural substance of the purity
// findings: full call chains, rendered boundary-first, surviving the
// facts JSON round-trip.
func TestPurityChains(t *testing.T) {
	results := analyzeFixtures(t)

	purity := map[string]lintrules.Finding{} // entry function suffix → finding
	for _, f := range results["sim"] {
		if f.Rule != "purity" {
			continue
		}
		name, _, ok := strings.Cut(f.Msg, " reaches ")
		if !ok {
			t.Fatalf("purity message without a 'reaches' clause: %q", f.Msg)
		}
		purity[name[strings.LastIndexByte(name, '.')+1:]] = f
	}

	deep, ok := purity["DeepChain"]
	if !ok {
		t.Fatal("no purity finding for sim.DeepChain")
	}
	if len(deep.Chain) != 4 {
		t.Errorf("DeepChain chain has %d frames, want 4 (entry, util.Deep, util.WallElapsed, time.Now): %q", len(deep.Chain), deep.Chain)
	}
	if !strings.HasSuffix(deep.Chain[0], ".DeepChain") {
		t.Errorf("DeepChain chain does not start at the entry function: %q", deep.Chain[0])
	}
	if last := deep.Chain[len(deep.Chain)-1]; !strings.Contains(last, "time.Now") {
		t.Errorf("DeepChain chain does not end at the source: %q", last)
	}
	if strings.Count(deep.Msg, " → ") != 3 {
		t.Errorf("DeepChain message should render 4 frames with 3 arrows: %q", deep.Msg)
	}

	if stamp, ok := purity["StampChain"]; !ok {
		t.Error("no purity finding for sim.StampChain")
	} else if len(stamp.Chain) != 3 {
		t.Errorf("StampChain chain has %d frames, want 3: %q", len(stamp.Chain), stamp.Chain)
	}
	if _, ok := purity["Relay"]; ok {
		t.Error("sim.Relay reported: boundary findings must not cascade to intra-package callers")
	}

	// resultcache sanctions the wall clock but not the global
	// generator: exactly one purity finding, and it is the RNG chain.
	var rc []lintrules.Finding
	for _, f := range results["resultcache"] {
		if f.Rule == "purity" {
			rc = append(rc, f)
		}
	}
	if len(rc) != 1 || !strings.Contains(rc[0].Msg, "global math/rand generator") {
		t.Errorf("resultcache purity findings = %v, want exactly the SeedFromGlobal globalrand chain", rc)
	}
}

// TestFindingRulesRegistered: every rule a fixture finding carries must
// exist in the -explain registry (SARIF rule indices depend on it).
func TestFindingRulesRegistered(t *testing.T) {
	registered := map[string]bool{}
	for _, r := range lintrules.Rules() {
		registered[r.Name] = true
	}
	for dir, findings := range analyzeFixtures(t) {
		for _, f := range findings {
			if !registered[f.Rule] {
				t.Errorf("%s: finding carries unregistered rule %q", dir, f.Rule)
			}
		}
	}
}
