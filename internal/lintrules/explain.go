package lintrules

import "sort"

// RuleInfo is one registered rule family: its machine name, the
// one-line description used in SARIF rule metadata, and the full
// explanation printed by `loggpvet -explain <name>`.
type RuleInfo struct {
	Name  string
	Short string
	Doc   string
}

// ruleRegistry holds every rule family the suite can emit. The
// fixture-discipline meta-test requires each entry to demonstrate at
// least one true positive ("// want <rule>") and one true negative
// ("// ok <rule>") under testdata/fixtures.
var ruleRegistry = []RuleInfo{
	{
		Name:  "maprange",
		Short: "map iteration order must not reach timeline- or response-visible values",
		Doc: `maprange — range over a map in timeline-affecting code.

Go randomizes map iteration order on every range. In the packages that
construct or order the simulated timeline (and in the service layer,
where iteration order would become response- or cache-key-visible), any
value fed from a map range silently varies between runs, breaking the
repository's same-seed ⇒ identical-timeline contract and the
differential suites built on it.

Fix: collect the keys, sort them, iterate the sorted slice. Test files
are exempt — building inputs from a map is fine when the assertion does
not depend on order.`,
	},
	{
		Name:  "globalrand",
		Short: "scheduler randomness must flow from seeds through owned sources",
		Doc: `globalrand — package-level math/rand or math/rand/v2 call.

The global generators draw from shared, unseedable-in-isolation state:
two runs with the same Config.Seed diverge the moment any other
goroutine also draws. Scheduler and service randomness must flow from a
seed through an owned source (rand.New(rand.NewSource(seed)), NewPCG,
NewChaCha8, NewZipf over an owned source) so every replay sees the same
stream. The constructors themselves are the sanctioned path and do not
fire the rule.`,
	},
	{
		Name:  "wallclock",
		Short: "simulators that own virtual time must not read the wall clock",
		Doc: `wallclock — time.Now/Since/Until inside a scheduler package.

The simulators OWN virtual time: every timestamp is derived from the
cost model and the event order. Reading the wall clock there is a
category error — it injects a value that differs every run into code
whose whole contract is bit-identical replay. The service layer is
exempt (deadlines, TTLs and Retry-After are genuinely real time), which
is why this is a separate rule from globalrand rather than one
"nondeterministic source" family.`,
	},
	{
		Name:  "nonfinite",
		Short: "clock arithmetic must stay finite; Inf only as a sentinel",
		Doc: `nonfinite — math.NaN, or math.Inf as an arithmetic operand.

Clock arithmetic must stay finite. math.Inf is a legal sentinel (the
schedulers use it for "no candidate") in assignments and comparisons,
but as an operand of +, -, * or / it yields Inf/NaN clocks that
propagate through every later max(); math.NaN() has no legal use in
simulator code at all — NaN even breaks the sentinel comparisons.`,
	},
	{
		Name:  "ctxpoll",
		Short: "unbounded loops in deadline-scoped evaluators must poll their context",
		Doc: `ctxpoll — a condition-less for-loop that never references the
function's context.Context parameter.

predictd prices a deadline into every admitted request and threads a
context through the evaluators; the guarantee only holds if every
unbounded loop on the evaluation path polls that context. A for {} that
never references ctx outlives any deadline the caller set — under load
that is a worker slot leaked until process exit.

Fix: select on ctx.Done() or check ctx.Err() each iteration. Bounded
loops (for i := 0; i < n; i++, range over a slice) are exempt, as are
functions that take no context — they are not deadline-scoped.`,
	},
	{
		Name:  "poolpoison",
		Short: "never repool an object reclaimed on a panic path",
		Doc: `poolpoison — sync.Pool.Put lexically inside a function that calls
recover().

An evaluator that panicked was mid-operation when the stack unwound:
its sessions, arenas and queues are in an unknown state. Returning it
to the pool trades an isolated failure for a silently wrong answer on
some unrelated later request. The repository's rule (DESIGN.md §5g) is
poison-not-repool: drop the object and let the pool's New construct a
fresh one.

The check is lexical per recovery scope: a Put in the same function
body (nested literals excluded — each literal is its own scope) as a
recover() call fires; the sanctioned pattern — Put only on the
non-panic path, recover in a literal that never Puts — stays silent.`,
	},
	{
		Name:  "floatorder",
		Short: "do not accumulate floats across map- or channel-ordered iteration",
		Doc: `floatorder — float accumulation (x += v, x = x + v, ...) inside a
range over a map or a channel, into a variable declared outside the
loop.

Floating-point addition is not associative: summing the same values in
two different orders yields two different bit patterns, so a float
accumulated across randomized map order (or goroutine completion order
on a channel) differs run to run even though the multiset of inputs is
identical. This holds repo-wide — not just in scheduler packages —
because any such sum that later reaches a prediction, a cache key, or
a report breaks byte-identical replay.

Fix: accumulate over a sorted slice, or accumulate integers.`,
	},
	{
		Name:  "errdrop",
		Short: "serve/cache paths must not discard error results",
		Doc: `errdrop — a call statement whose discarded results include an error,
in the serve/cache packages.

On the service path a swallowed error does not crash: it becomes a
wrong or missing response, an unstored cache entry, or a leaked slot —
failures the robustness contract (shed, degrade, drain) exists to make
explicit. Handle the error, or assign it to _ to acknowledge the
discard in code review.

Exempt: deferred cleanup calls, the fmt print family, and writers whose
contracts guarantee a nil error (strings.Builder, bytes.Buffer,
hash.Hash, hash/maphash).`,
	},
	{
		Name:  "purity",
		Short: "no call path from scheduler entry points to a nondeterministic source",
		Doc: `purity — an interprocedural call chain from a determinism entry point
to a forbidden source.

The single-pass rules see one package at a time; purity closes the gap
between packages. Every module package is summarized — for each
declared function, the call chain (if any) to a forbidden source: the
wall clock (time.Now/Since/Until), the global math/rand generators, the
process environment (os.Getenv/LookupEnv/Environ), or a map iteration
whose order escapes into ordering-sensitive values. Summaries flow
between packages through the vet driver's .vetx facts files, so a
scheduler entry point calling a helper that reads the wall clock three
packages down is reported at the boundary call, with the full chain:

    (sim.Session).Run reaches the wall clock: (sim.Session).Run →
    calls stats.WallMean (sim/sim.go:41:9) → time.Now (wall clock)
    (stats/stats.go:12:10)

Entry-point packages are declared in the policy table (the scheduler
cores, evaluators, sweep, faults, eventq, and resultcache key
construction — the latter with the wall clock sanctioned, since its
TTLs are real time while its keys must stay pure). The call graph is
conservative: static calls only — paths through function values,
interface methods, and goroutines are not tracked (DESIGN.md §5j), so
a report is always a real syntactic path, and silence is not a proof.`,
	},
	{
		Name:  "baseline",
		Short: "stale baseline entry: the pinned finding no longer exists",
		Doc: `baseline — a lint.baseline.json entry matched fewer findings than its
count.

Baseline entries pin sanctioned pre-existing findings by (package,
rule, file, count). When the underlying finding is fixed or moves, the
entry goes stale and fails the run instead of lingering as a silent
hole the rule can no longer see through. Delete the entry (or lower
its count) to match reality.`,
	},
}

// Rules returns the registered rule families sorted by name.
func Rules() []RuleInfo {
	out := append([]RuleInfo(nil), ruleRegistry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Explain returns the full documentation for one rule.
func Explain(name string) (RuleInfo, bool) {
	for _, r := range ruleRegistry {
		if r.Name == name {
			return r, true
		}
	}
	return RuleInfo{}, false
}
