package lintrules_test

import (
	"bytes"
	"go/token"
	"strings"
	"testing"

	"loggpsim/internal/lintrules"
)

func TestParseBaselineStrict(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"valid empty", `{"version":1,"entries":[]}`, ""},
		{"valid entry", `{"version":1,"entries":[{"pkg":"a/b","rule":"errdrop","file":"x.go","count":2}]}`, ""},
		{"unknown field", `{"version":1,"entries":[],"extra":true}`, "unknown field"},
		{"wrong version", `{"version":2,"entries":[]}`, "version 2"},
		{"missing pkg", `{"version":1,"entries":[{"rule":"r","file":"f.go","count":1}]}`, "required"},
		{"path file", `{"version":1,"entries":[{"pkg":"a","rule":"r","file":"d/f.go","count":1}]}`, "base name"},
		{"zero count", `{"version":1,"entries":[{"pkg":"a","rule":"r","file":"f.go","count":0}]}`, "positive"},
		{"duplicate", `{"version":1,"entries":[{"pkg":"a","rule":"r","file":"f.go","count":1},{"pkg":"a","rule":"r","file":"f.go","count":3}]}`, "duplicate"},
		{"trailing data", `{"version":1,"entries":[]} {}`, "trailing"},
		{"not json", `nope`, "baseline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := lintrules.ParseBaseline([]byte(c.in))
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want it to mention %q", err, c.wantErr)
			}
		})
	}
}

func TestFormatCanonical(t *testing.T) {
	in := `{"version":1,"entries":[` +
		`{"pkg":"z","rule":"r","file":"f.go","count":1},` +
		`{"pkg":"a","rule":"r","file":"f.go","count":2,"justification":"j"}]}`
	b, err := lintrules.ParseBaseline([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	out := b.Format()
	if !bytes.HasSuffix(out, []byte("\n")) {
		t.Error("Format output must end in a newline")
	}
	if za := bytes.Index(out, []byte(`"a"`)); za < 0 || bytes.Index(out, []byte(`"z"`)) < za {
		t.Errorf("Format must sort entries by key:\n%s", out)
	}
	b2, err := lintrules.ParseBaseline(out)
	if err != nil {
		t.Fatalf("Format output does not re-parse: %v", err)
	}
	if out2 := b2.Format(); !bytes.Equal(out, out2) {
		t.Errorf("Format is not idempotent:\n%s\nvs\n%s", out, out2)
	}

	empty := (&lintrules.Baseline{Version: lintrules.BaselineVersion}).Format()
	if !bytes.Contains(empty, []byte(`"entries": []`)) {
		t.Errorf("nil entries must format as an empty array:\n%s", empty)
	}
}

func finding(pkgFile string, line int, rule string) lintrules.Finding {
	return lintrules.Finding{
		Pos:  token.Position{Filename: pkgFile, Line: line},
		Rule: rule,
		Msg:  rule + " at " + pkgFile,
	}
}

func TestApplyBudgets(t *testing.T) {
	b, err := lintrules.ParseBaseline([]byte(
		`{"version":1,"entries":[{"pkg":"m/serve","rule":"errdrop","file":"s.go","count":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	// Two findings share the baselined key: the budget suppresses
	// exactly one, the second stays fresh.
	analyzed := map[string][]lintrules.Finding{
		"m/serve": {
			finding("internal/serve/s.go", 10, "errdrop"),
			finding("internal/serve/s.go", 20, "errdrop"),
			finding("internal/serve/s.go", 30, "maprange"),
		},
	}
	fresh, suppressed, stale := b.Apply(analyzed)
	if len(suppressed) != 1 || len(fresh) != 2 || len(stale) != 0 {
		t.Fatalf("fresh=%d suppressed=%d stale=%d, want 2/1/0", len(fresh), len(suppressed), len(stale))
	}
	for _, f := range fresh {
		if f.Rule == "errdrop" && f.Pos.Line == 10 {
			t.Error("the first matching finding should have been the suppressed one")
		}
	}
}

func TestApplyStale(t *testing.T) {
	b, err := lintrules.ParseBaseline([]byte(`{"version":1,"entries":[` +
		`{"pkg":"m/serve","rule":"errdrop","file":"s.go","count":2},` +
		`{"pkg":"m/other","rule":"errdrop","file":"o.go","count":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	// One of two pinned findings fixed: the remaining budget is stale.
	// m/other was NOT analyzed this run, so its entry must not be
	// declared stale by a partial sweep.
	analyzed := map[string][]lintrules.Finding{
		"m/serve": {finding("internal/serve/s.go", 10, "errdrop")},
	}
	fresh, suppressed, stale := b.Apply(analyzed)
	if len(fresh) != 0 || len(suppressed) != 1 {
		t.Fatalf("fresh=%d suppressed=%d, want 0/1", len(fresh), len(suppressed))
	}
	if len(stale) != 1 || stale[0].Pkg != "m/serve" || stale[0].Count != 1 {
		t.Fatalf("stale = %+v, want one m/serve entry with residual count 1", stale)
	}
}
