package lintrules

import "strings"

// Policy selects which rule families apply to one package. The zero
// value applies nothing; DefaultPolicy is what an unlisted module
// package gets (the repo-wide floor: float-accumulation order and pool
// poisoning are hazards everywhere, and every package contributes
// purity facts to the call-graph whether or not any diagnostic rule
// applies to it).
type Policy struct {
	// MapRange forbids ranging over a map outside _test.go files.
	MapRange bool
	// OwnedRand forbids the global math/rand generators.
	OwnedRand bool
	// WallClock forbids time.Now/Since/Until.
	WallClock bool
	// NonFinite forbids math.NaN and arithmetic on math.Inf.
	NonFinite bool
	// CtxPoll requires unbounded loops in context-taking functions to
	// poll their context.
	CtxPoll bool
	// PoolPoison forbids a sync.Pool.Put in a function that recovers.
	PoolPoison bool
	// FloatOrder forbids accumulating floats across map- or
	// channel-ordered iteration.
	FloatOrder bool
	// ErrDrop forbids discarding error results in serve/cache paths.
	ErrDrop bool
	// PurityEntry declares every function of the package an entry point
	// of the determinism contract: no call path from it may reach a
	// forbidden source (wall clock, global RNG, environment reads,
	// escaping map iteration) anywhere in the module.
	PurityEntry bool
	// PuritySanctionsWallClock exempts the wall clock from the purity
	// contract (the service-layer packages: TTLs and deadlines are real
	// time even though their payloads must stay deterministic).
	PuritySanctionsWallClock bool
}

// The three named profiles plus the repo-wide floor. See the package
// comment for the rationale behind each grouping.
var (
	// schedulerPolicy: packages that own virtual time and seeded
	// randomness (the simulator cores and everything that feeds them
	// charges, seeds, or tie-breaks).
	schedulerPolicy = Policy{
		MapRange: true, OwnedRand: true, WallClock: true, NonFinite: true,
		CtxPoll: true, PoolPoison: true, FloatOrder: true,
		PurityEntry: true,
	}
	// timelinePolicy: orders the simulated timeline but owns no
	// randomness of its own.
	timelinePolicy = Policy{
		MapRange: true, NonFinite: true, PoolPoison: true, FloatOrder: true,
	}
	// servicePolicy: the prediction-service layer — answers with the
	// schedulers' numbers, so iteration order, finiteness, and owned
	// randomness still apply, but the wall clock is legitimate
	// (deadlines, TTLs, Retry-After).
	servicePolicy = Policy{
		MapRange: true, OwnedRand: true, NonFinite: true,
		CtxPoll: true, PoolPoison: true, FloatOrder: true,
	}
	// DefaultPolicy is the repo-wide floor for unlisted packages.
	DefaultPolicy = Policy{PoolPoison: true, FloatOrder: true}
)

// errDrop augments a profile with the discarded-error rule (the
// serve/cache paths, where a swallowed error turns into a wrong or
// missing response instead of a crash).
func errDrop(p Policy) Policy { p.ErrDrop = true; return p }

// purityService marks a service-layer package as a purity entry point
// with the wall clock sanctioned (cache TTLs are real time; cache KEYS
// must still be pure).
func purityService(p Policy) Policy {
	p.PurityEntry = true
	p.PuritySanctionsWallClock = true
	return p
}

// policies is the per-package policy table, keyed by module-relative
// import path ("internal/sim", "cmd/predictd", "." for the module
// root). Every internal/ package MUST have an explicit entry — the
// fixture-discipline meta-test walks the tree and fails on a silent
// scope gap. cmd/ and examples/ packages may fall through to the
// segment fallback or DefaultPolicy.
var policies = map[string]Policy{
	// Scheduler core: the two simulator engines, the event queue
	// machinery, the fault injector, the Monte-Carlo envelope sweep,
	// the lockstep lane engine, the pooled evaluator, and the parallel
	// sweep engine that derives per-cell seeds.
	"internal/sim":       schedulerPolicy,
	"internal/worstcase": schedulerPolicy,
	"internal/eventq":    schedulerPolicy,
	"internal/faults":    schedulerPolicy,
	"internal/robust":    schedulerPolicy,
	"internal/lanes":     schedulerPolicy,
	"internal/predictor": schedulerPolicy,
	"internal/sweep":     schedulerPolicy,

	// Timeline construction and rendering.
	"internal/timeline": timelinePolicy,

	// Consistent-hash placement: the ring is the geometry every router
	// instance must independently agree on, so it carries the full
	// scheduler contract — placement is a pure function of (members,
	// salt), with no map order, wall clock, or global randomness.
	"internal/ring": schedulerPolicy,

	// Prediction service and its supporting machinery. resultcache is
	// additionally a purity entry point: its canonical key construction
	// addresses cache entries, so any nondeterminism there silently
	// splits one entry into many — but its TTL clock is sanctioned wall
	// time.
	"internal/serve":       errDrop(servicePolicy),
	"internal/cluster":     errDrop(servicePolicy),
	"internal/resultcache": purityService(errDrop(servicePolicy)),
	"internal/flight":      errDrop(servicePolicy),
	"internal/cache":       errDrop(servicePolicy),
	"internal/loadgen":     servicePolicy,
	"cmd/predictd":         errDrop(servicePolicy),
	"cmd/predictrouter":    errDrop(servicePolicy),
	"cmd/loadgen":          servicePolicy,

	// Everything else in the module gets the repo-wide floor,
	// explicitly listed so scope gaps are loud (see the meta-test).
	"internal/analyze":     DefaultPolicy,
	"internal/apps":        DefaultPolicy,
	"internal/blockops":    DefaultPolicy,
	"internal/cannon":      DefaultPolicy,
	"internal/capture":     DefaultPolicy,
	"internal/collectives": DefaultPolicy,
	"internal/cost":        DefaultPolicy,
	"internal/experiments": DefaultPolicy,
	"internal/fit":         DefaultPolicy,
	"internal/ge":          DefaultPolicy,
	"internal/layout":      DefaultPolicy,
	"internal/lintrules":   DefaultPolicy,
	"internal/loggp":       DefaultPolicy,
	"internal/machine":     DefaultPolicy,
	"internal/matrix":      DefaultPolicy,
	"internal/network":     DefaultPolicy,
	"internal/profiling":   DefaultPolicy,
	"internal/program":     DefaultPolicy,
	"internal/scaling":     DefaultPolicy,
	"internal/search":      DefaultPolicy,
	"internal/sensitivity": DefaultPolicy,
	"internal/stats":       DefaultPolicy,
	"internal/stencil":     DefaultPolicy,
	"internal/trace":       DefaultPolicy,
	"internal/trisolve":    DefaultPolicy,
	"internal/vruntime":    DefaultPolicy,

	"cmd/analyze":     DefaultPolicy,
	"cmd/appredict":   DefaultPolicy,
	"cmd/commviz":     DefaultPolicy,
	"cmd/experiments": DefaultPolicy,
	"cmd/gepredict":   DefaultPolicy,
	"cmd/loggpsim":    DefaultPolicy,
	"cmd/loggpvet":    DefaultPolicy,
	"cmd/robust":      DefaultPolicy,

	".": DefaultPolicy,
}

// ModuleRel returns pkgPath relative to the module prefix: "." for the
// module root, the trimmed path for module packages, and pkgPath
// unchanged for anything else (the fixture modules rely on the segment
// fallback below).
func ModuleRel(pkgPath, module string) string {
	if pkgPath == module {
		return "."
	}
	if rest, ok := strings.CutPrefix(pkgPath, module+"/"); ok {
		return rest
	}
	return pkgPath
}

// pkgSegment returns the final segment of an import path.
func pkgSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// PolicyFor resolves the policy for a module-relative package path. An
// explicit table entry wins; otherwise the final path segment is tried
// against internal/ then cmd/ (this is how the testdata fixture
// packages — "sim" in module lintfixtures — inherit the policy of the
// repository package they model); otherwise DefaultPolicy.
func PolicyFor(rel string) Policy {
	if p, ok := policies[rel]; ok {
		return p
	}
	seg := pkgSegment(rel)
	if p, ok := policies["internal/"+seg]; ok {
		return p
	}
	if p, ok := policies["cmd/"+seg]; ok {
		return p
	}
	return DefaultPolicy
}

// Covered reports whether any diagnostic rule applies to the package.
// Since the repo-wide floor applies float-order and pool-poison
// everywhere, every module package is covered; the function remains so
// callers can gate on future policy shapes rather than assuming it.
func Covered(rel string) bool {
	return PolicyFor(rel) != Policy{}
}

// Policies returns a copy of the policy table for tests and tooling.
func Policies() map[string]Policy {
	out := make(map[string]Policy, len(policies))
	for k, v := range policies {
		out[k] = v
	}
	return out
}
