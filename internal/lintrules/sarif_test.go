package lintrules_test

import (
	"encoding/json"
	"go/token"
	"testing"

	"loggpsim/internal/lintrules"
)

// The subset of SARIF 2.1.0 the repository emits, redeclared locally so
// the test checks the wire shape rather than sharing structs with the
// implementation.
type sarifWire struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name    string `json:"name"`
				Version string `json:"version"`
				Rules   []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
					Help struct {
						Text string `json:"text"`
					} `json:"help"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
			Suppressions []struct {
				Kind          string `json:"kind"`
				Justification string `json:"justification"`
			} `json:"suppressions"`
		} `json:"results"`
	} `json:"runs"`
}

func TestSARIFShape(t *testing.T) {
	fresh := []lintrules.Finding{{
		Pos:  token.Position{Filename: "/repo/internal/sim/engine.go", Line: 12, Column: 3},
		Rule: "maprange",
		Msg:  "range over map",
	}}
	suppressed := []lintrules.Finding{{
		Pos:  token.Position{Filename: "/elsewhere/y.go"}, // no line: must clamp to 1
		Rule: "purity",
		Msg:  "chain",
	}}
	out := lintrules.SARIF("abc123", "/repo", fresh, suppressed)

	var log sarifWire
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version=%q schema=%q, want 2.1.0 and a schema URI", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("%d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "loggpvet" || run.Tool.Driver.Version != "abc123" {
		t.Errorf("driver %s/%s, want loggpvet/abc123", run.Tool.Driver.Name, run.Tool.Driver.Version)
	}
	if len(run.Tool.Driver.Rules) != len(lintrules.Rules()) {
		t.Errorf("%d rule metadata entries, want %d", len(run.Tool.Driver.Rules), len(lintrules.Rules()))
	}
	ruleAt := map[int]string{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" || r.Help.Text == "" {
			t.Errorf("rule %d (%s): metadata text missing", i, r.ID)
		}
		ruleAt[i] = r.ID
	}

	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2 (1 fresh + 1 suppressed)", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "maprange" || ruleAt[r0.RuleIndex] != "maprange" || r0.Level != "error" {
		t.Errorf("fresh result: ruleId=%s ruleIndex=%d level=%s", r0.RuleID, r0.RuleIndex, r0.Level)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/sim/engine.go" {
		t.Errorf("uri = %q, want the repo-relative forward-slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Errorf("region = %+v, want 12:3", loc.Region)
	}
	if len(r0.Suppressions) != 0 {
		t.Error("fresh result must carry no suppressions")
	}

	r1 := run.Results[1]
	if r1.RuleID != "purity" || ruleAt[r1.RuleIndex] != "purity" {
		t.Errorf("suppressed result: ruleId=%s ruleIndex=%d", r1.RuleID, r1.RuleIndex)
	}
	if uri := r1.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/y.go" {
		t.Errorf("out-of-root path must stay absolute, got %q", uri)
	}
	if r1.Locations[0].PhysicalLocation.Region.StartLine != 1 {
		t.Error("a zero line must clamp to startLine 1")
	}
	if len(r1.Suppressions) != 1 || r1.Suppressions[0].Kind != "external" {
		t.Errorf("suppressed result suppressions = %+v, want one kind=external", r1.Suppressions)
	}
}
