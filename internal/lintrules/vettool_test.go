package lintrules

// Integration test of the full vet pipeline: build cmd/loggpvet, drive
// it through the real `go vet -vettool=` protocol, and check both sides
// of the acceptance criterion — every rule demonstrates a true positive
// on its fixture, and the repository's own scheduling packages come back
// clean.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildVettool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "loggpvet")
	cmd := exec.Command("go", "build", "-o", bin, "loggpsim/cmd/loggpvet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/loggpvet: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	// The test runs in internal/lintrules; the module root is two up.
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(abs, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", abs, err)
	}
	return abs
}

func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := buildVettool(t)

	t.Run("fixtures_fire", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = filepath.Join(repoRoot(t), "internal", "lintrules", "testdata", "fixtures")
		cmd.Env = append(os.Environ(), "LOGGPVET_MODULE=lintfixtures")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet succeeded on the true-positive fixtures:\n%s", out)
		}
		text := string(out)
		for _, rule := range []string{"maprange", "globalrand", "nonfinite"} {
			if !strings.Contains(text, "("+rule+")") {
				t.Errorf("rule %s reported nothing:\n%s", rule, text)
			}
		}
		// The cache fixture's map-ordered key construction must fire.
		if !strings.Contains(text, "keyorder.go") {
			t.Errorf("resultcache fixture reported nothing:\n%s", text)
		}
		// The exemptions must hold: nothing from the test file, nothing
		// from the out-of-scope package, nothing from the sanctioned
		// constructs.
		for _, silent := range []string{"maprange_test.go", "app/clean.go", "Seeded", "Sentinel"} {
			if strings.Contains(text, silent) {
				t.Errorf("%s should be exempt:\n%s", silent, text)
			}
		}
	})

	t.Run("repo_clean", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "-vettool="+bin,
			"./internal/sim/...", "./internal/worstcase/...",
			"./internal/eventq/...", "./internal/timeline/...",
			"./internal/serve/...", "./internal/resultcache/...",
			"./internal/flight/...", "./internal/loadgen/...",
			"./cmd/predictd/...", "./cmd/loadgen/...")
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("vettool reports findings on the repository: %v\n%s", err, out)
		}
	})
}
