package lintrules_test

import (
	"bytes"
	"testing"

	"loggpsim/internal/lintrules"
)

// FuzzBaselineRoundTrip: any input ParseBaseline accepts must Format
// to a canonical form that re-parses and re-formats byte-identically —
// the property `make lint`'s "regenerate the baseline" workflow leans
// on (a canonical file diffs minimally and never oscillates).
func FuzzBaselineRoundTrip(f *testing.F) {
	f.Add([]byte(`{"version":1,"entries":[]}`))
	f.Add([]byte(`{"version":1,"entries":[{"pkg":"loggpsim/internal/serve","rule":"errdrop","file":"server.go","count":2,"justification":"legacy"}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"pkg":"b","rule":"r","file":"f.go","count":1},{"pkg":"a","rule":"r","file":"f.go","count":9}]}`))
	f.Add([]byte(`{"version":2,"entries":[]}`))
	f.Add([]byte(`{"version":1,"entries":[{"pkg":"a","rule":"r","file":"../f.go","count":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := lintrules.ParseBaseline(data)
		if err != nil {
			return // rejected inputs are out of scope; we only demand no panic
		}
		out := b.Format()
		b2, err := lintrules.ParseBaseline(out)
		if err != nil {
			t.Fatalf("Format produced output ParseBaseline rejects: %v\n%s", err, out)
		}
		if out2 := b2.Format(); !bytes.Equal(out, out2) {
			t.Fatalf("Format not idempotent:\n%s\nvs\n%s", out, out2)
		}
	})
}
