package lintrules

// Minimal SARIF 2.1.0 emission. The shapes below cover the subset of
// the schema the repository publishes: one run, the loggpvet driver
// with full rule metadata, one result per finding with a physical
// location, and suppression objects on baselined results ("pinned, not
// silenced" — suppressed findings stay visible to SARIF consumers).

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
	Help             sarifMessage `json:"help"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// SARIF renders findings as a SARIF 2.1.0 log. root, when non-empty,
// is stripped from file paths so artifact URIs are repo-relative (and
// forward-slashed, as SARIF requires). suppressed findings — the
// baselined ones — are emitted as results carrying a suppression
// object, so they remain visible without failing consumers.
func SARIF(version, root string, fresh, suppressed []Finding) []byte {
	rules := Rules()
	index := map[string]int{}
	var srs []sarifRule
	for i, r := range rules {
		index[r.Name] = i
		srs = append(srs, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Short},
			FullDescription:  sarifMessage{Text: r.Short},
			Help:             sarifMessage{Text: r.Doc},
		})
	}
	result := func(f Finding, sup []sarifSuppression) sarifResult {
		uri := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		uri = filepath.ToSlash(uri)
		line := f.Pos.Line
		if line <= 0 {
			line = 1
		}
		return sarifResult{
			RuleID:    f.Rule,
			RuleIndex: index[f.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
				},
			}},
			Suppressions: sup,
		}
	}
	results := []sarifResult{}
	for _, f := range fresh {
		results = append(results, result(f, nil))
	}
	for _, f := range suppressed {
		results = append(results, result(f, []sarifSuppression{{
			Kind:          "external",
			Justification: "pinned by lint.baseline.json",
		}}))
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "loggpvet",
				Version:        version,
				InformationURI: "https://example.invalid/loggpsim/cmd/loggpvet",
				Rules:          srs,
			}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		panic(err) // plain data; cannot fail
	}
	return append(out, '\n')
}
