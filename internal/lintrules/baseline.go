package lintrules

// The checked-in baseline pins pre-existing sanctioned findings without
// silencing the rules that produced them. An entry matches by
// (package, rule, file basename, count): baselined findings are
// suppressed from the failing output (but still carried into SARIF as
// suppressed results), and an entry that matches fewer findings than
// its count — the code was fixed, or moved — is STALE and fails the
// run, so the baseline can only shrink deliberately, never rot.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
)

// BaselineEntry pins Count sanctioned findings of one rule in one file
// of one package.
type BaselineEntry struct {
	Pkg           string `json:"pkg"`
	Rule          string `json:"rule"`
	File          string `json:"file"` // base name, not path
	Count         int    `json:"count"`
	Justification string `json:"justification,omitempty"`
}

func (e BaselineEntry) key() string { return e.Pkg + "\x00" + e.Rule + "\x00" + e.File }

// Baseline is the parsed lint.baseline.json.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineVersion is the accepted file format version.
const BaselineVersion = 1

// ParseBaseline decodes and validates a baseline file. The decoder is
// strict — unknown fields, duplicate (pkg, rule, file) keys, non-
// positive counts, and foreign versions are all errors — so a typo in
// a hand-edited baseline cannot silently widen it.
func ParseBaseline(data []byte) (*Baseline, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Baseline
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("baseline: trailing data after the document")
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("baseline: version %d, want %d", b.Version, BaselineVersion)
	}
	seen := map[string]bool{}
	for i, e := range b.Entries {
		if e.Pkg == "" || e.Rule == "" || e.File == "" {
			return nil, fmt.Errorf("baseline: entry %d: pkg, rule, and file are required", i)
		}
		if e.File != filepath.Base(e.File) {
			return nil, fmt.Errorf("baseline: entry %d: file %q must be a base name", i, e.File)
		}
		if e.Count <= 0 {
			return nil, fmt.Errorf("baseline: entry %d: count must be positive", i)
		}
		if seen[e.key()] {
			return nil, fmt.Errorf("baseline: duplicate entry for %s %s %s", e.Pkg, e.Rule, e.File)
		}
		seen[e.key()] = true
	}
	return &b, nil
}

// Format renders the baseline canonically: entries sorted by
// (pkg, rule, file), two-space indent, trailing newline. Format is the
// round-trip inverse of ParseBaseline (fuzzed in FuzzBaselineRoundTrip)
// and idempotent, so regenerated baselines diff minimally.
func (b *Baseline) Format() []byte {
	c := Baseline{Version: b.Version, Entries: append([]BaselineEntry(nil), b.Entries...)}
	if c.Entries == nil {
		c.Entries = []BaselineEntry{}
	}
	sort.Slice(c.Entries, func(i, j int) bool { return c.Entries[i].key() < c.Entries[j].key() })
	out, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		// Baseline is plain data; MarshalIndent cannot fail on it.
		panic(err)
	}
	return append(out, '\n')
}

// Apply splits findings into fresh (not baselined — these fail the
// run) and suppressed, and returns the stale entries: baseline lines
// whose package was analyzed but that matched fewer findings than
// their count. analyzed maps package path → its findings; packages
// outside the map are not judged (a partial vet run must not declare
// the rest of the baseline stale).
func (b *Baseline) Apply(analyzed map[string][]Finding) (fresh, suppressed []Finding, stale []BaselineEntry) {
	budget := map[string]int{}
	for _, e := range b.Entries {
		budget[e.key()] = e.Count
	}
	pkgs := make([]string, 0, len(analyzed))
	for pkg := range analyzed {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		for _, f := range analyzed[pkg] {
			key := BaselineEntry{Pkg: pkg, Rule: f.Rule, File: filepath.Base(f.Pos.Filename)}.key()
			if budget[key] > 0 {
				budget[key]--
				suppressed = append(suppressed, f)
			} else {
				fresh = append(fresh, f)
			}
		}
	}
	for _, e := range b.Entries {
		if _, ok := analyzed[e.Pkg]; ok && budget[e.key()] > 0 {
			left := e
			left.Count = budget[e.key()]
			stale = append(stale, left)
		}
	}
	return fresh, suppressed, stale
}
