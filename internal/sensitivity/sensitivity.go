// Package sensitivity quantifies how strongly a prediction depends on
// each LogGP machine parameter, by finite differences: the elasticity
// (relative change in predicted time per relative change in parameter)
// of L, o, g and G. It answers the machine-design question the LogP/
// LogGP papers pose — which network property is the bottleneck for this
// program? — using the paper's simulator as the evaluator.
package sensitivity

import (
	"fmt"

	"loggpsim/internal/loggp"
)

// Elasticity is one parameter's finite-difference sensitivity.
type Elasticity struct {
	// Param names the parameter ("L", "o", "g" or "G").
	Param string
	// Base and Perturbed are the predicted times before and after the
	// perturbation.
	Base, Perturbed float64
	// Value is (ΔT/T)/(Δp/p): 1.0 means the time scales one-for-one
	// with the parameter; 0 means the parameter does not matter. Zero-
	// valued parameters cannot be perturbed relatively and report 0.
	Value float64
}

// Report holds the sensitivities of one prediction.
type Report struct {
	// Base is the unperturbed predicted time.
	Base float64
	// PerParam lists the four parameters in L, o, g, G order.
	PerParam [4]Elasticity
}

// Dominant returns the parameter with the largest elasticity magnitude.
func (r *Report) Dominant() Elasticity {
	best := r.PerParam[0]
	for _, e := range r.PerParam[1:] {
		if abs(e.Value) > abs(best.Value) {
			best = e
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Analyze perturbs each parameter of base by the relative delta
// (e.g. 0.1 for +10%) and evaluates predict at every point.
func Analyze(base loggp.Params, delta float64,
	predict func(p loggp.Params) (float64, error)) (*Report, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("sensitivity: delta must be positive, got %g", delta)
	}
	baseTime, err := predict(base)
	if err != nil {
		return nil, fmt.Errorf("sensitivity: base prediction: %w", err)
	}
	if baseTime <= 0 {
		return nil, fmt.Errorf("sensitivity: non-positive base prediction %g", baseTime)
	}
	r := &Report{Base: baseTime}
	perturbations := []struct {
		name  string
		value float64
		apply func(p *loggp.Params, v float64)
	}{
		{"L", base.L, func(p *loggp.Params, v float64) { p.L = v }},
		{"o", base.O, func(p *loggp.Params, v float64) { p.O = v }},
		{"g", base.Gap, func(p *loggp.Params, v float64) { p.Gap = v }},
		{"G", base.G, func(p *loggp.Params, v float64) { p.G = v }},
	}
	for i, pert := range perturbations {
		e := Elasticity{Param: pert.name, Base: baseTime, Perturbed: baseTime}
		if pert.value > 0 {
			p := base
			pert.apply(&p, pert.value*(1+delta))
			t, err := predict(p)
			if err != nil {
				return nil, fmt.Errorf("sensitivity: perturbing %s: %w", pert.name, err)
			}
			e.Perturbed = t
			e.Value = ((t - baseTime) / baseTime) / delta
		}
		r.PerParam[i] = e
	}
	return r, nil
}
