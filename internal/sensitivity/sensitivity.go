// Package sensitivity quantifies how strongly a prediction depends on
// each LogGP machine parameter, by finite differences: the elasticity
// (relative change in predicted time per relative change in parameter)
// of L, o, g and G. It answers the machine-design question the LogP/
// LogGP papers pose — which network property is the bottleneck for this
// program? — using the paper's simulator as the evaluator.
package sensitivity

import (
	"fmt"

	"loggpsim/internal/loggp"
	"loggpsim/internal/sweep"
)

// Elasticity is one parameter's finite-difference sensitivity.
type Elasticity struct {
	// Param names the parameter ("L", "o", "g" or "G").
	Param string
	// Base and Perturbed are the predicted times before and after the
	// perturbation.
	Base, Perturbed float64
	// Value is (ΔT/T)/(Δp/p): 1.0 means the time scales one-for-one
	// with the parameter; 0 means the parameter does not matter. Zero-
	// valued parameters cannot be perturbed relatively and report 0.
	Value float64
}

// Report holds the sensitivities of one prediction.
type Report struct {
	// Base is the unperturbed predicted time.
	Base float64
	// PerParam lists the four parameters in L, o, g, G order.
	PerParam [4]Elasticity
}

// Dominant returns the parameter with the largest elasticity magnitude.
func (r *Report) Dominant() Elasticity {
	best := r.PerParam[0]
	for _, e := range r.PerParam[1:] {
		if abs(e.Value) > abs(best.Value) {
			best = e
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Analyze perturbs each parameter of base by the relative delta
// (e.g. 0.1 for +10%) and evaluates predict at every point. It is
// AnalyzeParallel with one worker.
func Analyze(base loggp.Params, delta float64,
	predict func(p loggp.Params) (float64, error)) (*Report, error) {
	return AnalyzeParallel(base, delta, predict, 1)
}

// AnalyzeParallel is Analyze with the five predictions — the base point
// plus the four perturbations — fanned out over a worker pool (workers
// < 1 selects runtime.GOMAXPROCS(0)). predict must be safe for
// concurrent use when more than one worker is configured. The report is
// identical to the serial Analyze at every worker count: the evaluation
// points depend only on base and delta, and the elasticities are
// assembled serially from the ordered results.
func AnalyzeParallel(base loggp.Params, delta float64,
	predict func(p loggp.Params) (float64, error), workers int) (*Report, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("sensitivity: delta must be positive, got %g", delta)
	}
	type point struct {
		name  string
		value float64
		apply func(p *loggp.Params, v float64)
	}
	// Item 0 is the base prediction; the rest are the perturbations in
	// L, o, g, G order. A base failure has the lowest item index, so it
	// wins error propagation exactly as in the serial loop.
	points := []point{
		{name: "base"},
		{"L", base.L, func(p *loggp.Params, v float64) { p.L = v }},
		{"o", base.O, func(p *loggp.Params, v float64) { p.O = v }},
		{"g", base.Gap, func(p *loggp.Params, v float64) { p.Gap = v }},
		{"G", base.G, func(p *loggp.Params, v float64) { p.G = v }},
	}
	times, err := sweep.Map(points, func(i int, pt point) (float64, error) {
		if i == 0 {
			t, err := predict(base)
			if err != nil {
				return 0, fmt.Errorf("sensitivity: base prediction: %w", err)
			}
			if t <= 0 {
				return 0, fmt.Errorf("sensitivity: non-positive base prediction %g", t)
			}
			return t, nil
		}
		if pt.value <= 0 {
			return 0, nil // zero-valued parameters cannot be perturbed relatively
		}
		p := base
		pt.apply(&p, pt.value*(1+delta))
		t, err := predict(p)
		if err != nil {
			return 0, fmt.Errorf("sensitivity: perturbing %s: %w", pt.name, err)
		}
		return t, nil
	}, sweep.Workers(workers))
	if err != nil {
		return nil, err
	}
	baseTime := times[0]
	r := &Report{Base: baseTime}
	for i, pt := range points[1:] {
		e := Elasticity{Param: pt.name, Base: baseTime, Perturbed: baseTime}
		if pt.value > 0 {
			e.Perturbed = times[i+1]
			e.Value = ((e.Perturbed - baseTime) / baseTime) / delta
		}
		r.PerParam[i] = e
	}
	return r, nil
}
