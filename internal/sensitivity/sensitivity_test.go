package sensitivity

import (
	"errors"
	"math"
	"testing"

	"loggpsim/internal/cost"
	"loggpsim/internal/ge"
	"loggpsim/internal/layout"
	"loggpsim/internal/loggp"
	"loggpsim/internal/predictor"
	"loggpsim/internal/sim"
	"loggpsim/internal/trace"
)

func TestAnalyzePointToPoint(t *testing.T) {
	// T = o + (k-1)G + L + o is linear in every parameter, so the
	// elasticities are exactly each term's share of the total.
	base := loggp.Params{L: 10, O: 5, Gap: 20, G: 0.01, P: 2}
	const bytes = 1001
	predict := func(p loggp.Params) (float64, error) {
		return sim.Completion(trace.New(2).Add(0, 1, bytes), p)
	}
	r, err := Analyze(base, 0.05, predict)
	if err != nil {
		t.Fatal(err)
	}
	const total = 5 + 1000*0.01 + 10 + 5 // 30
	if r.Base != total {
		t.Fatalf("base = %g, want %g", r.Base, float64(total))
	}
	wants := map[string]float64{
		"L": 10.0 / 30,
		"o": 10.0 / 30, // both o terms
		"g": 0,         // a single message never waits on the gap
		"G": 10.0 / 30,
	}
	for _, e := range r.PerParam {
		if math.Abs(e.Value-wants[e.Param]) > 1e-9 {
			t.Errorf("elasticity(%s) = %g, want %g", e.Param, e.Value, wants[e.Param])
		}
	}
}

func TestAnalyzeZeroParamSkipped(t *testing.T) {
	base := loggp.Params{L: 10, O: 5, Gap: 20, G: 0, P: 2}
	predict := func(p loggp.Params) (float64, error) {
		return sim.Completion(trace.New(2).Add(0, 1, 4096), p)
	}
	r, err := Analyze(base, 0.1, predict)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.PerParam {
		if e.Param == "G" && e.Value != 0 {
			t.Fatalf("zero G produced elasticity %g", e.Value)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	ok := func(loggp.Params) (float64, error) { return 1, nil }
	if _, err := Analyze(loggp.MeikoCS2(2), 0, ok); err == nil {
		t.Error("zero delta accepted")
	}
	boom := errors.New("boom")
	bad := func(loggp.Params) (float64, error) { return 0, boom }
	if _, err := Analyze(loggp.MeikoCS2(2), 0.1, bad); !errors.Is(err, boom) {
		t.Error("prediction error not propagated")
	}
	zero := func(loggp.Params) (float64, error) { return 0, nil }
	if _, err := Analyze(loggp.MeikoCS2(2), 0.1, zero); err == nil {
		t.Error("non-positive base accepted")
	}
}

// TestGESensitivities: for the small-block GE the gap dominates (many
// tiny messages), for the large-block GE the per-byte bandwidth term
// overtakes the gap — the bottleneck shifts exactly as the message-size
// distribution predicts.
func TestGESensitivities(t *testing.T) {
	model := cost.DefaultAnalytic()
	analyze := func(b int) *Report {
		t.Helper()
		const n = 192
		g, err := ge.NewGrid(n, b)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := ge.BuildProgram(g, layout.Diagonal(8, g.NB))
		if err != nil {
			t.Fatal(err)
		}
		r, err := Analyze(loggp.MeikoCS2(8), 0.1, func(p loggp.Params) (float64, error) {
			pred, err := predictor.Predict(pr, predictor.Config{Params: p, Cost: model, Seed: 1})
			if err != nil {
				return 0, err
			}
			return pred.Total, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	small, large := analyze(8), analyze(96)
	if small.Dominant().Param != "g" {
		t.Errorf("small blocks: dominant = %s (%+v), want g", small.Dominant().Param, small.PerParam)
	}
	gSmall, gLarge := 0.0, 0.0
	GSmall, GLarge := 0.0, 0.0
	for _, e := range small.PerParam {
		switch e.Param {
		case "g":
			gSmall = e.Value
		case "G":
			GSmall = e.Value
		}
	}
	for _, e := range large.PerParam {
		switch e.Param {
		case "g":
			gLarge = e.Value
		case "G":
			GLarge = e.Value
		}
	}
	if !(gSmall > gLarge) {
		t.Errorf("gap elasticity did not shrink with block size: %g vs %g", gSmall, gLarge)
	}
	if !(GLarge > GSmall) {
		t.Errorf("bandwidth elasticity did not grow with block size: %g vs %g", GSmall, GLarge)
	}
}

// TestAnalyzeParallelMatchesSerial: the fanned-out analysis must produce
// the exact serial report (bit-for-bit elasticities) at every worker
// count, on a real GE prediction.
func TestAnalyzeParallelMatchesSerial(t *testing.T) {
	g, err := ge.NewGrid(96, 16)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ge.BuildProgram(g, layout.Diagonal(4, g.NB))
	if err != nil {
		t.Fatal(err)
	}
	model := cost.DefaultAnalytic()
	predict := func(p loggp.Params) (float64, error) {
		pred, err := predictor.Predict(pr, predictor.Config{Params: p, Cost: model, Seed: 1})
		if err != nil {
			return 0, err
		}
		return pred.Total, nil
	}
	base := loggp.MeikoCS2(4)
	want, err := Analyze(base, 0.1, predict)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 8} {
		got, err := AnalyzeParallel(base, 0.1, predict, workers)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("workers=%d: %+v, want serial %+v", workers, got, want)
		}
	}
}
