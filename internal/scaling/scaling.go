// Package scaling analyzes the scaling behaviour of predicted running
// times — the second use the paper's introduction names for its method
// ("the prediction of running times is also useful for analyzing the
// scaling behavior of parallel programs"). Given a prediction function,
// it produces speedup and efficiency curves over processor counts and
// searches for iso-efficient problem sizes.
package scaling

import (
	"errors"
	"fmt"
	"sort"

	"loggpsim/internal/sweep"
)

// Point is one processor count of a scaling sweep.
type Point struct {
	// P is the processor count.
	P int
	// Time is the predicted running time.
	Time float64
	// Speedup is Time(base)·base.P/ (Time·1) normalized so that the
	// baseline point has Speedup == base.P (for a baseline of one
	// processor this is the classic T(1)/T(P)).
	Speedup float64
	// Efficiency is Speedup / P, in (0, 1] for well-behaved programs.
	Efficiency float64
}

// ErrNoPoints is returned for empty sweeps.
var ErrNoPoints = errors.New("scaling: no processor counts")

// Sweep predicts the running time for every processor count (sorted
// ascending; the smallest is the baseline) and derives speedups and
// efficiencies. It is SweepParallel with one worker.
func Sweep(procs []int, predict func(p int) (float64, error)) ([]Point, error) {
	return SweepParallel(procs, predict, 1)
}

// SweepParallel is Sweep with the per-processor-count predictions fanned
// out over a worker pool (workers < 1 selects runtime.GOMAXPROCS(0)).
// predict must be safe for concurrent use when more than one worker is
// configured; the curve is identical to the serial Sweep at every worker
// count, since speedups and efficiencies are derived serially from the
// ordered prediction results.
func SweepParallel(procs []int, predict func(p int) (float64, error), workers int) ([]Point, error) {
	if len(procs) == 0 {
		return nil, ErrNoPoints
	}
	ps := append([]int(nil), procs...)
	sort.Ints(ps)
	if ps[0] <= 0 {
		return nil, fmt.Errorf("scaling: invalid processor count %d", ps[0])
	}
	points, err := sweep.Map(ps, func(_ int, p int) (Point, error) {
		t, err := predict(p)
		if err != nil {
			return Point{}, fmt.Errorf("scaling: predicting P=%d: %w", p, err)
		}
		if t <= 0 {
			return Point{}, fmt.Errorf("scaling: non-positive time %g at P=%d", t, p)
		}
		return Point{P: p, Time: t}, nil
	}, sweep.Workers(workers))
	if err != nil {
		return nil, err
	}
	base := points[0]
	for i := range points {
		points[i].Speedup = base.Time * float64(base.P) / points[i].Time
		points[i].Efficiency = points[i].Speedup / float64(points[i].P)
	}
	return points, nil
}

// FindIsoefficientSize returns the smallest candidate problem size whose
// predicted efficiency at p processors (relative to baseP processors on
// the same size) reaches target — the iso-efficiency question "how much
// must the problem grow to keep P processors busy?". Candidates are
// tried in ascending order; ErrNoPoints is returned if none qualifies.
func FindIsoefficientSize(sizes []int, p, baseP int, target float64,
	predict func(n, procs int) (float64, error)) (int, error) {
	if len(sizes) == 0 {
		return 0, ErrNoPoints
	}
	if p <= 0 || baseP <= 0 || baseP > p {
		return 0, fmt.Errorf("scaling: invalid processor counts base=%d target=%d", baseP, p)
	}
	ns := append([]int(nil), sizes...)
	sort.Ints(ns)
	for _, n := range ns {
		tBase, err := predict(n, baseP)
		if err != nil {
			return 0, fmt.Errorf("scaling: predicting n=%d P=%d: %w", n, baseP, err)
		}
		tP, err := predict(n, p)
		if err != nil {
			return 0, fmt.Errorf("scaling: predicting n=%d P=%d: %w", n, p, err)
		}
		if tBase <= 0 || tP <= 0 {
			return 0, fmt.Errorf("scaling: non-positive prediction at n=%d", n)
		}
		eff := tBase * float64(baseP) / (tP * float64(p))
		if eff >= target {
			return n, nil
		}
	}
	return 0, fmt.Errorf("scaling: no candidate size reaches efficiency %.2f at P=%d: %w",
		target, p, ErrNoPoints)
}
