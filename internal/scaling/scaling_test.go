package scaling

import (
	"errors"
	"math"
	"testing"

	"loggpsim/internal/cost"
	"loggpsim/internal/ge"
	"loggpsim/internal/layout"
	"loggpsim/internal/loggp"
	"loggpsim/internal/predictor"
)

// amdahl models T(p) = serial + parallel/p.
func amdahl(serial, parallel float64) func(p int) (float64, error) {
	return func(p int) (float64, error) {
		return serial + parallel/float64(p), nil
	}
}

func TestSweepAmdahl(t *testing.T) {
	pts, err := Sweep([]int{1, 2, 4, 8}, amdahl(10, 90))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Fatalf("baseline point %+v", pts[0])
	}
	// T(1)=100, T(2)=55, T(4)=32.5, T(8)=21.25.
	wantSpeedup := []float64{1, 100.0 / 55, 100.0 / 32.5, 100.0 / 21.25}
	for i, w := range wantSpeedup {
		if math.Abs(pts[i].Speedup-w) > 1e-12 {
			t.Fatalf("speedup[%d] = %g, want %g", i, pts[i].Speedup, w)
		}
	}
	// Efficiency is monotone decreasing under Amdahl.
	for i := 1; i < len(pts); i++ {
		if pts[i].Efficiency >= pts[i-1].Efficiency {
			t.Fatalf("efficiency not decreasing: %+v", pts)
		}
	}
}

func TestSweepSortsAndValidates(t *testing.T) {
	pts, err := Sweep([]int{8, 1, 4}, amdahl(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].P != 1 || pts[2].P != 8 {
		t.Fatalf("not sorted: %+v", pts)
	}
	// Perfectly parallel work: efficiency 1 at every count.
	for _, p := range pts {
		if math.Abs(p.Efficiency-1) > 1e-12 {
			t.Fatalf("ideal efficiency = %g", p.Efficiency)
		}
	}
	if _, err := Sweep(nil, amdahl(1, 1)); !errors.Is(err, ErrNoPoints) {
		t.Error("empty sweep accepted")
	}
	if _, err := Sweep([]int{0, 2}, amdahl(1, 1)); err == nil {
		t.Error("zero processor count accepted")
	}
	bad := func(int) (float64, error) { return -1, nil }
	if _, err := Sweep([]int{1}, bad); err == nil {
		t.Error("non-positive time accepted")
	}
}

func TestSweepBaselineAboveOne(t *testing.T) {
	// With a baseline of 2 processors, the baseline speedup equals 2.
	pts, err := Sweep([]int{2, 4}, amdahl(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Speedup != 2 || pts[0].Efficiency != 1 {
		t.Fatalf("baseline %+v", pts[0])
	}
}

func TestFindIsoefficientSize(t *testing.T) {
	// T(n, p) = n³/p + 50·n² (communication term): efficiency at fixed p
	// grows with n, so larger targets need larger n.
	predict := func(n, p int) (float64, error) {
		nf := float64(n)
		return nf*nf*nf/float64(p) + 50*nf*nf, nil
	}
	sizes := []int{10, 50, 100, 400, 1600}
	n, err := FindIsoefficientSize(sizes, 8, 1, 0.7, predict)
	if err != nil {
		t.Fatal(err)
	}
	// eff(n) = T(n,1)/(8·T(n,8)) = (n+50)/(n+400); ≥0.7 needs n ≥ 766.
	if n != 1600 {
		t.Fatalf("iso-efficient size = %d, want 1600", n)
	}
	// An easy target qualifies a smaller size.
	n, err = FindIsoefficientSize(sizes, 8, 1, 0.2, predict)
	if err != nil || n != 50 {
		t.Fatalf("easy target: n = %d, %v; want 50", n, err)
	}
	// An impossible target errors with ErrNoPoints.
	if _, err := FindIsoefficientSize(sizes, 8, 1, 0.99, predict); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("impossible target: %v", err)
	}
	if _, err := FindIsoefficientSize(nil, 8, 1, 0.5, predict); !errors.Is(err, ErrNoPoints) {
		t.Error("empty sizes accepted")
	}
	if _, err := FindIsoefficientSize(sizes, 2, 4, 0.5, predict); err == nil {
		t.Error("base above target P accepted")
	}
}

// TestGEScaling runs the real predictor across processor counts: speedup
// must grow and efficiency fall, the classic scaling picture the paper's
// introduction promises the method reveals.
func TestGEScaling(t *testing.T) {
	model := cost.DefaultAnalytic()
	predict := func(p int) (float64, error) {
		const n, b = 192, 16
		g, err := ge.NewGrid(n, b)
		if err != nil {
			return 0, err
		}
		pr, err := ge.BuildProgram(g, layout.Diagonal(p, g.NB))
		if err != nil {
			return 0, err
		}
		pred, err := predictor.Predict(pr, predictor.Config{
			Params: loggp.MeikoCS2(p), Cost: model, Seed: 1,
		})
		if err != nil {
			return 0, err
		}
		return pred.Total, nil
	}
	pts, err := Sweep([]int{1, 2, 4, 8}, predict)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Fatalf("speedup not increasing: %+v", pts)
		}
	}
	if last := pts[len(pts)-1]; last.Efficiency >= pts[0].Efficiency {
		t.Fatalf("efficiency did not fall from %g to below, got %g",
			pts[0].Efficiency, last.Efficiency)
	}
	if pts[len(pts)-1].Speedup < 2 {
		t.Fatalf("8 processors yield speedup %g; expected at least 2", pts[len(pts)-1].Speedup)
	}
}

// TestSweepParallelMatchesSerial: the fanned-out scaling sweep must
// produce the exact serial curve at every worker count.
func TestSweepParallelMatchesSerial(t *testing.T) {
	model := cost.DefaultAnalytic()
	predict := func(p int) (float64, error) {
		g, err := ge.NewGrid(96, 16)
		if err != nil {
			return 0, err
		}
		pr, err := ge.BuildProgram(g, layout.Diagonal(p, g.NB))
		if err != nil {
			return 0, err
		}
		pred, err := predictor.Predict(pr, predictor.Config{
			Params: loggp.MeikoCS2(p), Cost: model, Seed: 1,
		})
		if err != nil {
			return 0, err
		}
		return pred.Total, nil
	}
	procs := []int{1, 2, 3, 4, 6}
	want, err := Sweep(procs, predict)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := SweepParallel(procs, predict, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d point %d: %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
