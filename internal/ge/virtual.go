package ge

import (
	"fmt"

	"loggpsim/internal/blockops"
	"loggpsim/internal/cost"
	"loggpsim/internal/layout"
	"loggpsim/internal/loggp"
	"loggpsim/internal/matrix"
	"loggpsim/internal/vruntime"
)

// VirtualFactor factors a in place on the virtual-time runtime: the same
// wavefront dataflow as ParallelFactor, but every processor is a virtual
// processor whose computations are charged from the cost model and whose
// messages obey the LogGP rules — real numerics and a predicted running
// time from one execution (direct-execution simulation). It returns the
// runtime result; the factorization lands in a.
func VirtualFactor(a *matrix.Dense, b int, lay layout.Layout,
	params loggp.Params, model cost.Model) (*vruntime.Result, error) {
	g, err := NewGrid(a.Rows, b)
	if err != nil {
		return nil, err
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("ge: matrix must be square, got %d×%d", a.Rows, a.Cols)
	}
	if err := layout.Validate(lay, g.NB); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("ge: no cost model")
	}
	nb := g.NB
	blk := make([][]*matrix.Dense, nb)
	for i := range blk {
		blk[i] = make([]*matrix.Dense, nb)
		for j := range blk[i] {
			blk[i][j] = matrix.New(b, b)
			matrix.CopyBlock(blk[i][j], a, i, j, b)
		}
	}
	bytes := blockops.BlockBytes(b)
	// Carry tags: wave, destination block, and direction packed into one
	// integer.
	tag := func(wave, bi, bj int, fromLeft bool) uint64 {
		t := uint64(wave)<<32 | uint64(bi)<<17 | uint64(bj)<<1
		if fromLeft {
			t |= 1
		}
		return t
	}

	var firstErr error
	res, err := vruntime.Run(lay.P(), params, func(p *vruntime.Proc) {
		pending := map[uint64]*matrix.Dense{}
		take := func(key uint64) *matrix.Dense {
			for {
				if d, ok := pending[key]; ok {
					delete(pending, key)
					return d
				}
				m := p.Recv()
				pending[m.Tag] = m.Data.(*matrix.Dense)
			}
		}
		for t := 0; t < g.Waves(); t++ {
			g.active(t, func(i, j, k int) {
				if lay.Owner(i, j) != p.ID() {
					return
				}
				var left, above *matrix.Dense
				if j > k {
					left = take(tag(t, i, j, true))
				}
				if i > k {
					above = take(tag(t, i, j, false))
				}
				op := OpFor(i, j, k)
				var right, down *matrix.Dense
				p.Compute(model.Cost(op, b), func() {
					switch op {
					case blockops.Op1:
						d, err := blockops.ApplyOp1(blk[i][j])
						if err != nil {
							if firstErr == nil {
								firstErr = err
							}
							d = blockops.Diag{
								LU:   blk[i][j],
								Linv: matrix.Identity(b),
								Uinv: matrix.Identity(b),
							}
						}
						right, down = d.Linv, d.Uinv
					case blockops.Op2:
						blockops.ApplyOp2(left, blk[i][j])
						right, down = left, blk[i][j]
					case blockops.Op3:
						blockops.ApplyOp3(blk[i][j], above)
						right, down = blk[i][j], above
					default:
						blockops.ApplyOp4(blk[i][j], left, above)
						right, down = left, above
					}
				})
				if j+1 < nb {
					p.Send(lay.Owner(i, j+1), tag(t+1, i, j+1, true), right, bytes)
				}
				if i+1 < nb {
					p.Send(lay.Owner(i+1, j), tag(t+1, i+1, j, false), down, bytes)
				}
			})
		}
	})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("ge: virtual factorization: %w", firstErr)
	}
	for i := range blk {
		for j := range blk[i] {
			matrix.SetBlock(a, blk[i][j], i, j, b)
		}
	}
	return res, nil
}
