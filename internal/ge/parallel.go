package ge

import (
	"fmt"
	"sync"

	"loggpsim/internal/blockops"
	"loggpsim/internal/layout"
	"loggpsim/internal/matrix"
)

// carry is one wavefront message: the pivot-column data travelling right
// along a block row (left carry) or the pivot-row data travelling down a
// block column (above carry).
type carry struct {
	wave     int
	bi, bj   int // destination block
	fromLeft bool
	data     *matrix.Dense
}

type carryKey struct {
	wave     int
	bi, bj   int
	fromLeft bool
}

// ParallelFactor factors a in place using the wavefront algorithm with
// one goroutine per processor of the layout. Every cross-processor data
// movement is an actual channel message; co-located movements are local
// hand-offs. The communication structure executed here is exactly the
// one BuildProgram describes, so validating this factorization against
// SequentialBlocked validates the program fed to the simulators.
//
// Carried payloads are immutable once sent (the diagonal inverses and
// finished panel blocks are never written again), so messages pass
// references without copying — the same zero-copy behaviour the paper's
// Split-C implementation gets from active messages.
func ParallelFactor(a *matrix.Dense, b int, lay layout.Layout) error {
	g, err := NewGrid(a.Rows, b)
	if err != nil {
		return err
	}
	if a.Rows != a.Cols {
		return fmt.Errorf("ge: matrix must be square, got %d×%d", a.Rows, a.Cols)
	}
	if err := layout.Validate(lay, g.NB); err != nil {
		return err
	}
	nb, p := g.NB, lay.P()

	// Extract the block grid; each block is written only by its owner.
	blk := make([][]*matrix.Dense, nb)
	for i := range blk {
		blk[i] = make([]*matrix.Dense, nb)
		for j := range blk[i] {
			blk[i][j] = matrix.New(b, b)
			matrix.CopyBlock(blk[i][j], a, i, j, b)
		}
	}

	// Pre-size each processor's inbox to the exact number of network
	// messages it will receive, so sends never block and the wave loops
	// cannot deadlock.
	inboxSize := make([]int, p)
	for t := 0; t < g.Waves(); t++ {
		g.active(t, func(i, j, k int) {
			owner := lay.Owner(i, j)
			if j+1 < nb && lay.Owner(i, j+1) != owner {
				inboxSize[lay.Owner(i, j+1)]++
			}
			if i+1 < nb && lay.Owner(i+1, j) != owner {
				inboxSize[lay.Owner(i+1, j)]++
			}
		})
	}
	inbox := make([]chan carry, p)
	for i := range inbox {
		inbox[i] = make(chan carry, inboxSize[i])
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for proc := 0; proc < p; proc++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			pending := make(map[carryKey]*matrix.Dense)
			// take retrieves the carry for (wave, bi, bj, dir), pulling
			// from the inbox and stashing unrelated messages until it
			// appears.
			take := func(key carryKey) *matrix.Dense {
				for {
					if d, ok := pending[key]; ok {
						delete(pending, key)
						return d
					}
					m := <-inbox[me]
					pending[carryKey{m.wave, m.bi, m.bj, m.fromLeft}] = m.data
				}
			}
			deliver := func(wave, bi, bj int, fromLeft bool, data *matrix.Dense) {
				dst := lay.Owner(bi, bj)
				m := carry{wave: wave, bi: bi, bj: bj, fromLeft: fromLeft, data: data}
				if dst == me {
					pending[carryKey{wave, bi, bj, fromLeft}] = data
					return
				}
				inbox[dst] <- m
			}
			for t := 0; t < g.Waves(); t++ {
				g.active(t, func(i, j, k int) {
					if lay.Owner(i, j) != me {
						return
					}
					var left, above *matrix.Dense
					if j > k {
						left = take(carryKey{t, i, j, true})
					}
					if i > k {
						above = take(carryKey{t, i, j, false})
					}
					var right, down *matrix.Dense
					switch OpFor(i, j, k) {
					case blockops.Op1:
						d, err := blockops.ApplyOp1(blk[i][j])
						if err != nil {
							errOnce.Do(func() { firstErr = err })
							// Keep the dataflow alive so every goroutine
							// terminates; the result is discarded.
							d = blockops.Diag{
								LU:   blk[i][j],
								Linv: matrix.Identity(b),
								Uinv: matrix.Identity(b),
							}
						}
						right, down = d.Linv, d.Uinv
					case blockops.Op2:
						blockops.ApplyOp2(left, blk[i][j])
						right, down = left, blk[i][j]
					case blockops.Op3:
						blockops.ApplyOp3(blk[i][j], above)
						right, down = blk[i][j], above
					default: // Op4
						blockops.ApplyOp4(blk[i][j], left, above)
						right, down = left, above
					}
					if j+1 < nb {
						deliver(t+1, i, j+1, true, right)
					}
					if i+1 < nb {
						deliver(t+1, i+1, j, false, down)
					}
				})
			}
		}(proc)
	}
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("ge: parallel factorization: %w", firstErr)
	}
	for i := range blk {
		for j := range blk[i] {
			matrix.SetBlock(a, blk[i][j], i, j, b)
		}
	}
	return nil
}
