// Package ge implements the paper's test application: the blocked
// parallel Gaussian elimination algorithm without pivoting (its
// Sections 5 and 6).
//
// The algorithm views each sequential elimination iteration as a
// diagonal wave traversing the matrix from the upper-left to the
// lower-right corner; several waves are active simultaneously. In the
// blocked version, block (i,j) performs its update for pivot k at wave
// step t = i+j+k, consuming pivot-column data arriving from its left
// neighbour and pivot-row data from its upper neighbour, and forwarding
// both to its right and lower neighbours. Each active block applies one
// of the four basic operations of package blockops.
//
// The package provides three coordinated artifacts:
//
//   - SequentialBlocked: the blocked factorization run in place, the
//     numeric reference;
//   - BuildProgram: the oblivious program (alternating computation and
//     communication steps) replayed by the predictor and the machine
//     emulator;
//   - ParallelFactor: an actual concurrent executor (one goroutine per
//     processor, channel messages for every network transfer) whose
//     result is validated against the reference — evidence that the
//     program BuildProgram hands to the simulators describes a real,
//     correct parallel execution.
package ge

import (
	"fmt"

	"loggpsim/internal/blockops"
	"loggpsim/internal/layout"
	"loggpsim/internal/matrix"
	"loggpsim/internal/program"
)

// Grid describes a blocked square matrix: NB×NB blocks of size B.
type Grid struct {
	// NB is the number of blocks per dimension.
	NB int
	// B is the block side length.
	B int
}

// NewGrid validates that an n×n matrix divides into b×b blocks.
func NewGrid(n, b int) (Grid, error) {
	if n <= 0 || b <= 0 {
		return Grid{}, fmt.Errorf("ge: invalid matrix size %d or block size %d", n, b)
	}
	if n%b != 0 {
		return Grid{}, fmt.Errorf("ge: block size %d does not divide matrix size %d", b, n)
	}
	return Grid{NB: n / b, B: b}, nil
}

// N returns the matrix side length.
func (g Grid) N() int { return g.NB * g.B }

// Waves returns the number of wave steps of the blocked algorithm:
// block (nb-1, nb-1) performs its last update (pivot nb-1) at wave
// 3(nb-1), so there are 3(nb-1)+1 steps.
func (g Grid) Waves() int { return 3*(g.NB-1) + 1 }

// OpFor classifies the basic operation block (i,j) performs for pivot k.
func OpFor(i, j, k int) blockops.Op {
	switch {
	case i == k && j == k:
		return blockops.Op1
	case i == k:
		return blockops.Op2
	case j == k:
		return blockops.Op3
	default:
		return blockops.Op4
	}
}

// active calls fn for every block active at wave t, in deterministic
// (k, i) order: block (i,j) with pivot k = t-i-j, subject to
// 0 <= k <= min(i,j) <= nb-1.
func (g Grid) active(t int, fn func(i, j, k int)) {
	nb := g.NB
	kLo := t - 2*(nb-1)
	if kLo < 0 {
		kLo = 0
	}
	kHi := t / 3
	if kHi > nb-1 {
		kHi = nb - 1
	}
	for k := kLo; k <= kHi; k++ {
		d := t - k // the anti-diagonal the pivot-k wave occupies
		iLo := k
		if c := d - (nb - 1); c > iLo {
			iLo = c
		}
		iHi := d - k // ensures j = d-i >= k
		if iHi > nb-1 {
			iHi = nb - 1
		}
		for i := iLo; i <= iHi; i++ {
			fn(i, d-i, k)
		}
	}
}

// BuildProgram generates the oblivious program of the blocked wavefront
// elimination on the given layout: one step per wave, whose computation
// phase holds every active block's basic operation on its owner and
// whose communication phase carries one b×b block to the right and one
// downward from every active block (messages between co-located blocks
// become self messages — local transfers that the LogGP simulation
// skips and the machine emulator charges as memory copies).
func BuildProgram(g Grid, lay layout.Layout) (*program.Program, error) {
	if err := layout.Validate(lay, g.NB); err != nil {
		return nil, err
	}
	pr := program.New(lay.P())
	bytes := blockops.BlockBytes(g.B)
	for t := 0; t < g.Waves(); t++ {
		s := pr.AddStep()
		// Edges between co-located blocks are intentional local
		// transfers, not accidental self-sends.
		s.Comm.WithLocalTransfers()
		g.active(t, func(i, j, k int) {
			owner := lay.Owner(i, j)
			s.AddOpOn(owner, OpFor(i, j, k), g.B, uint64(i*g.NB+j))
			if j+1 < g.NB {
				s.Comm.Add(owner, lay.Owner(i, j+1), bytes)
			}
			if i+1 < g.NB {
				s.Comm.Add(owner, lay.Owner(i+1, j), bytes)
			}
		})
	}
	return pr, nil
}

// SequentialBlocked factors a in place with the right-looking blocked
// algorithm built from the four basic operations, leaving the combined
// LU factors (compare matrix.LUInPlace). It is the numeric reference for
// the parallel executor.
func SequentialBlocked(a *matrix.Dense, b int) error {
	g, err := NewGrid(a.Rows, b)
	if err != nil {
		return err
	}
	if a.Rows != a.Cols {
		return fmt.Errorf("ge: matrix must be square, got %d×%d", a.Rows, a.Cols)
	}
	nb := g.NB
	// Work on block copies for locality, write back at the end.
	blk := make([][]*matrix.Dense, nb)
	for i := range blk {
		blk[i] = make([]*matrix.Dense, nb)
		for j := range blk[i] {
			blk[i][j] = matrix.New(b, b)
			matrix.CopyBlock(blk[i][j], a, i, j, b)
		}
	}
	for k := 0; k < nb; k++ {
		d, err := blockops.ApplyOp1(blk[k][k])
		if err != nil {
			return fmt.Errorf("ge: pivot block %d: %w", k, err)
		}
		for j := k + 1; j < nb; j++ {
			blockops.ApplyOp2(d.Linv, blk[k][j])
		}
		for i := k + 1; i < nb; i++ {
			blockops.ApplyOp3(blk[i][k], d.Uinv)
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				blockops.ApplyOp4(blk[i][j], blk[i][k], blk[k][j])
			}
		}
	}
	for i := range blk {
		for j := range blk[i] {
			matrix.SetBlock(a, blk[i][j], i, j, b)
		}
	}
	return nil
}
