package ge

import (
	"loggpsim/internal/blockops"
	"loggpsim/internal/layout"
	"loggpsim/internal/program"
)

// BuildBroadcastProgram generates the bulk-synchronous right-looking
// variant of the blocked elimination — the classical broadcast-based
// schedule (ScaLAPACK-style) — as an alternative to the paper's
// pipelined wavefront. Iteration k takes three steps:
//
//  1. the owner of (k,k) factors and inverts the diagonal block (Op1)
//     and sends the inverses to every distinct owner of the pivot row
//     and column panels;
//  2. the panel owners update their blocks (Op2/Op3) and send each
//     panel block to every distinct owner of its trailing column or row;
//  3. every interior block is updated (Op4); no communication.
//
// The operation multiset is identical to BuildProgram's; only the
// schedule differs, so predicting both quantifies what the paper's
// wavefront pipelining buys — a design-space study the method enables.
func BuildBroadcastProgram(g Grid, lay layout.Layout) (*program.Program, error) {
	if err := layout.Validate(lay, g.NB); err != nil {
		return nil, err
	}
	pr := program.New(lay.P())
	nb := g.NB
	bytes := blockops.BlockBytes(g.B)
	id := func(i, j int) uint64 { return uint64(i*nb + j) }

	for k := 0; k < nb; k++ {
		// Step 1: factor the diagonal block, broadcast the inverses.
		s1 := pr.AddStep()
		s1.Comm.WithLocalTransfers() // broadcasts to co-located blocks stay local
		diagOwner := lay.Owner(k, k)
		s1.AddOpOn(diagOwner, blockops.Op1, g.B, id(k, k))
		rowOwners := map[int]bool{}
		colOwners := map[int]bool{}
		for j := k + 1; j < nb; j++ {
			rowOwners[lay.Owner(k, j)] = true
		}
		for i := k + 1; i < nb; i++ {
			colOwners[lay.Owner(i, k)] = true
		}
		for owner := 0; owner < lay.P(); owner++ { // deterministic order
			if rowOwners[owner] {
				s1.Comm.Add(diagOwner, owner, bytes) // Linv
			}
			if colOwners[owner] {
				s1.Comm.Add(diagOwner, owner, bytes) // Uinv
			}
		}
		if k == nb-1 {
			continue
		}

		// Step 2: panel updates, then broadcast each panel block into
		// its trailing row or column.
		s2 := pr.AddStep()
		s2.Comm.WithLocalTransfers()
		for j := k + 1; j < nb; j++ {
			owner := lay.Owner(k, j)
			s2.AddOpOn(owner, blockops.Op2, g.B, id(k, j))
			dsts := map[int]bool{}
			for i := k + 1; i < nb; i++ {
				dsts[lay.Owner(i, j)] = true
			}
			for dst := 0; dst < lay.P(); dst++ {
				if dsts[dst] {
					s2.Comm.Add(owner, dst, bytes)
				}
			}
		}
		for i := k + 1; i < nb; i++ {
			owner := lay.Owner(i, k)
			s2.AddOpOn(owner, blockops.Op3, g.B, id(i, k))
			dsts := map[int]bool{}
			for j := k + 1; j < nb; j++ {
				dsts[lay.Owner(i, j)] = true
			}
			for dst := 0; dst < lay.P(); dst++ {
				if dsts[dst] {
					s2.Comm.Add(owner, dst, bytes)
				}
			}
		}

		// Step 3: trailing update.
		s3 := pr.AddStep()
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				s3.AddOpOn(lay.Owner(i, j), blockops.Op4, g.B, id(i, j))
			}
		}
	}
	return pr, nil
}
