package ge

import (
	"testing"
	"testing/quick"

	"loggpsim/internal/blockops"
	"loggpsim/internal/cost"
	"loggpsim/internal/layout"
	"loggpsim/internal/loggp"
	"loggpsim/internal/matrix"
	"loggpsim/internal/predictor"
)

func TestNewGrid(t *testing.T) {
	g, err := NewGrid(96, 8)
	if err != nil || g.NB != 12 || g.B != 8 || g.N() != 96 {
		t.Fatalf("NewGrid(96,8) = %+v, %v", g, err)
	}
	if _, err := NewGrid(96, 7); err == nil {
		t.Fatal("non-dividing block size accepted")
	}
	if _, err := NewGrid(0, 4); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewGrid(8, -1); err == nil {
		t.Fatal("negative block accepted")
	}
}

func TestWaves(t *testing.T) {
	g := Grid{NB: 4, B: 8}
	if g.Waves() != 10 { // 3*(4-1)+1
		t.Fatalf("Waves = %d, want 10", g.Waves())
	}
	if (Grid{NB: 1, B: 8}).Waves() != 1 {
		t.Fatal("single-block grid must have one wave")
	}
}

func TestOpFor(t *testing.T) {
	tests := []struct {
		i, j, k int
		want    blockops.Op
	}{
		{0, 0, 0, blockops.Op1},
		{2, 2, 2, blockops.Op1},
		{1, 3, 1, blockops.Op2},
		{3, 1, 1, blockops.Op3},
		{2, 3, 1, blockops.Op4},
	}
	for _, tt := range tests {
		if got := OpFor(tt.i, tt.j, tt.k); got != tt.want {
			t.Errorf("OpFor(%d,%d,%d) = %v, want %v", tt.i, tt.j, tt.k, got, tt.want)
		}
	}
}

func TestSequentialBlockedMatchesElementwise(t *testing.T) {
	for _, tc := range []struct{ n, b int }{
		{8, 8},  // single block: pure Op1
		{8, 4},  // 2x2 blocks
		{24, 4}, // 6x6 blocks
		{30, 5},
		{12, 1}, // element-sized blocks
	} {
		a := matrix.Random(tc.n, int64(tc.n+tc.b))
		ref := a.Clone()
		if err := matrix.LUInPlace(ref); err != nil {
			t.Fatal(err)
		}
		got := a.Clone()
		if err := SequentialBlocked(got, tc.b); err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		if res := matrix.MaxAbsDiff(got, ref); res > 1e-8 {
			t.Errorf("n=%d b=%d: blocked LU differs from reference by %g", tc.n, tc.b, res)
		}
		if res := matrix.LUResidual(a, got); res > 1e-8 {
			t.Errorf("n=%d b=%d: residual %g", tc.n, tc.b, res)
		}
	}
}

func TestSequentialBlockedErrors(t *testing.T) {
	if err := SequentialBlocked(matrix.New(4, 6), 2); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	if err := SequentialBlocked(matrix.New(4, 4), 3); err == nil {
		t.Fatal("non-dividing block accepted")
	}
	if err := SequentialBlocked(matrix.New(4, 4), 2); err == nil {
		t.Fatal("singular (all-zero) matrix factored without error")
	}
}

func TestParallelFactorMatchesSequential(t *testing.T) {
	const n, b = 48, 4 // 12x12 blocks
	layouts := []layout.Layout{
		layout.Custom(1, "serial", func(int, int) int { return 0 }),
		layout.RowCyclic(8),
		layout.ColCyclic(3),
		layout.Diagonal(8, n/b),
		layout.BlockCyclic2D(2, 4),
	}
	a := matrix.Random(n, 77)
	want := a.Clone()
	if err := SequentialBlocked(want, b); err != nil {
		t.Fatal(err)
	}
	for _, lay := range layouts {
		got := a.Clone()
		if err := ParallelFactor(got, b, lay); err != nil {
			t.Fatalf("%s: %v", lay.Name(), err)
		}
		if res := matrix.MaxAbsDiff(got, want); res > 1e-9 {
			t.Errorf("%s: parallel result differs from sequential by %g", lay.Name(), res)
		}
	}
}

func TestParallelFactorSingularPropagatesError(t *testing.T) {
	a := matrix.New(8, 8) // singular
	if err := ParallelFactor(a, 4, layout.RowCyclic(2)); err == nil {
		t.Fatal("singular matrix factored without error")
	}
}

func TestBuildProgramShape(t *testing.T) {
	const nb, b = 4, 8
	g := Grid{NB: nb, B: b}
	lay := layout.Diagonal(3, nb)
	pr, err := BuildProgram(g, lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pr.Steps) != g.Waves() {
		t.Fatalf("steps = %d, want %d", len(pr.Steps), g.Waves())
	}
	st := pr.Summarize()
	// Total ops: sum over k of (nb-k)^2 = 16+9+4+1.
	totalOps := 0
	for _, c := range st.Ops {
		totalOps += c
	}
	if totalOps != 30 {
		t.Fatalf("total ops = %d, want 30", totalOps)
	}
	if st.Ops[blockops.Op1] != nb {
		t.Fatalf("Op1 count = %d, want %d", st.Ops[blockops.Op1], nb)
	}
	// Op2 and Op3: sum over k of (nb-1-k) each = 3+2+1 = 6.
	if st.Ops[blockops.Op2] != 6 || st.Ops[blockops.Op3] != 6 {
		t.Fatalf("panel op counts = %d/%d, want 6/6", st.Ops[blockops.Op2], st.Ops[blockops.Op3])
	}
	if st.Ops[blockops.Op4] != 14 { // 9+4+1
		t.Fatalf("Op4 count = %d, want 14", st.Ops[blockops.Op4])
	}
	// First wave: exactly the Op1 of block (0,0) and its two sends.
	first := pr.Steps[0]
	if len(first.Comp[lay.Owner(0, 0)]) != 1 || len(first.Comm.Msgs) != 2 {
		t.Fatalf("first wave: %d ops, %d msgs", len(first.Comp[lay.Owner(0, 0)]), len(first.Comm.Msgs))
	}
	// Last wave: the Op1 of block (nb-1, nb-1) and no sends.
	last := pr.Steps[len(pr.Steps)-1]
	if len(last.Comm.Msgs) != 0 {
		t.Fatalf("last wave has %d messages", len(last.Comm.Msgs))
	}
	// Every message carries one block.
	for _, s := range pr.Steps {
		for _, m := range s.Comm.Msgs {
			if m.Bytes != blockops.BlockBytes(b) {
				t.Fatalf("message of %d bytes, want %d", m.Bytes, blockops.BlockBytes(b))
			}
		}
	}
}

func TestBuildProgramRowCyclicRowTransfersAreLocal(t *testing.T) {
	// The paper: under the row-stripped cyclic layout, row-wise
	// propagation involves no message transfer. Every rightward send
	// must be a self message; every downward send between distinct rows
	// must cross the network (P > 1 and nb <= P here, so adjacent rows
	// never share a processor).
	g := Grid{NB: 4, B: 8}
	lay := layout.RowCyclic(8)
	pr, err := BuildProgram(g, lay)
	if err != nil {
		t.Fatal(err)
	}
	st := pr.Summarize()
	// Rightward sends: for each active (i,j,k) with j+1<nb. Count them:
	// local messages must equal exactly the rightward sends.
	wantLocal := 0
	wantNet := 0
	for t2 := 0; t2 < g.Waves(); t2++ {
		g.active(t2, func(i, j, k int) {
			if j+1 < g.NB {
				wantLocal++
			}
			if i+1 < g.NB {
				wantNet++
			}
		})
	}
	if st.LocalMessages != wantLocal {
		t.Fatalf("local messages = %d, want %d (all rightward sends)", st.LocalMessages, wantLocal)
	}
	if st.NetworkMessages != wantNet {
		t.Fatalf("network messages = %d, want %d (all downward sends)", st.NetworkMessages, wantNet)
	}
}

func TestBuildProgramDiagonalHasFewerNetworkMessagesThanColumnCyclic(t *testing.T) {
	// Sanity cross-check of traffic accounting: diagonal mapping sends
	// some messages locally (lower-right coincidences) so its network
	// count is below the everything-remote worst case.
	g := Grid{NB: 12, B: 8}
	diag, err := BuildProgram(g, layout.Diagonal(8, g.NB))
	if err != nil {
		t.Fatal(err)
	}
	if diag.Summarize().LocalMessages == 0 {
		t.Fatal("diagonal mapping produced no local transfers; expected some")
	}
}

func TestActiveEnumerationCoversEveryUpdateOnce(t *testing.T) {
	g := Grid{NB: 5, B: 4}
	seen := map[[3]int]int{}
	for t2 := 0; t2 < g.Waves(); t2++ {
		g.active(t2, func(i, j, k int) {
			seen[[3]int{i, j, k}]++
			if k != t2-i-j {
				t.Fatalf("wave %d delivered (%d,%d,%d)", t2, i, j, k)
			}
		})
	}
	for i := 0; i < g.NB; i++ {
		for j := 0; j < g.NB; j++ {
			kMax := i
			if j < i {
				kMax = j
			}
			for k := 0; k <= kMax; k++ {
				if seen[[3]int{i, j, k}] != 1 {
					t.Fatalf("update (%d,%d,%d) enumerated %d times", i, j, k, seen[[3]int{i, j, k}])
				}
			}
		}
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	want := 0
	for k := 0; k < g.NB; k++ {
		want += (g.NB - k) * (g.NB - k)
	}
	if total != want {
		t.Fatalf("total updates %d, want %d", total, want)
	}
}

// Property: the parallel executor agrees with the sequential blocked
// reference for random shapes, block sizes and layouts.
func TestParallelFactorProperty(t *testing.T) {
	f := func(seed int64, nbRaw, bRaw, pRaw uint8) bool {
		nb := int(nbRaw%6) + 1
		b := int(bRaw%4) + 1
		p := int(pRaw%7) + 1
		n := nb * b
		a := matrix.Random(n, seed)
		want := a.Clone()
		if err := SequentialBlocked(want, b); err != nil {
			return false
		}
		got := a.Clone()
		if err := ParallelFactor(got, b, layout.Diagonal(p, nb)); err != nil {
			return false
		}
		return matrix.MaxAbsDiff(got, want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualFactorNumericsAndTime(t *testing.T) {
	const n, b = 96, 8
	params := loggp.MeikoCS2(8)
	model := cost.DefaultAnalytic()
	lay := layout.Diagonal(8, n/b)

	a := matrix.Random(n, 5)
	want := a.Clone()
	if err := SequentialBlocked(want, b); err != nil {
		t.Fatal(err)
	}
	got := a.Clone()
	res, err := VirtualFactor(got, b, lay, params, model)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("virtual factorization differs from sequential by %g", d)
	}
	if err := res.Timeline.Verify(params); err != nil {
		t.Fatalf("runtime timeline invalid: %v", err)
	}

	// The direct-execution time is a third estimate; it must land in the
	// same regime as the pattern-replay predictions (the schedules
	// differ — receive-on-demand versus receive-priority — so exact
	// equality is not expected).
	g, err := NewGrid(n, b)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildProgram(g, lay)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := predictor.Predict(pr, predictor.Config{Params: params, Cost: model, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0.7*pred.Total, 1.3*pred.TotalWorst
	if res.Finish < lo || res.Finish > hi {
		t.Fatalf("virtual time %g outside [%g, %g] (standard %g, worst %g)",
			res.Finish, lo, hi, pred.Total, pred.TotalWorst)
	}
	t.Logf("virtual %g vs standard %g vs worst %g", res.Finish, pred.Total, pred.TotalWorst)
}

func TestVirtualFactorErrors(t *testing.T) {
	params := loggp.MeikoCS2(4)
	model := cost.DefaultAnalytic()
	if _, err := VirtualFactor(matrix.New(4, 6), 2, layout.RowCyclic(2), params, model); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := VirtualFactor(matrix.New(8, 8), 3, layout.RowCyclic(2), params, model); err == nil {
		t.Error("non-dividing block accepted")
	}
	if _, err := VirtualFactor(matrix.Random(8, 1), 4, layout.RowCyclic(2), params, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := VirtualFactor(matrix.New(8, 8), 4, layout.RowCyclic(2), params, model); err == nil {
		t.Error("singular matrix factored without error")
	}
}

func TestBroadcastProgramShape(t *testing.T) {
	g := Grid{NB: 4, B: 8}
	lay := layout.Diagonal(3, g.NB)
	pr, err := BuildBroadcastProgram(g, lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 steps per iteration except the last (factor only).
	if want := 3*(g.NB-1) + 1; len(pr.Steps) != want {
		t.Fatalf("steps = %d, want %d", len(pr.Steps), want)
	}
	// The operation multiset matches the wavefront program's exactly.
	wave, err := BuildProgram(g, lay)
	if err != nil {
		t.Fatal(err)
	}
	bc, wf := pr.Summarize(), wave.Summarize()
	if bc.Ops != wf.Ops {
		t.Fatalf("op counts differ: broadcast %v, wavefront %v", bc.Ops, wf.Ops)
	}
	if bc.Flops != wf.Flops {
		t.Fatalf("flops differ: %g vs %g", bc.Flops, wf.Flops)
	}
}

func TestBroadcastVsWavefrontPrediction(t *testing.T) {
	// The design-space study the method enables: neither schedule
	// dominates. At the smallest blocks the wavefront drowns in
	// per-block messages (two per block per wave, gap-bound) and the
	// broadcast schedule — which deduplicates panel transfers per
	// destination processor — wins; at moderate blocks the wavefront's
	// pipelining wins, since the broadcast variant serializes trailing
	// updates behind full panel exchanges.
	model := cost.DefaultAnalytic()
	params := loggp.MeikoCS2(8)
	predictBoth := func(b int) (wave, bcast float64) {
		t.Helper()
		const n = 96
		g, err := NewGrid(n, b)
		if err != nil {
			t.Fatal(err)
		}
		lay := layout.Diagonal(8, g.NB)
		wf, err := BuildProgram(g, lay)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := BuildBroadcastProgram(g, lay)
		if err != nil {
			t.Fatal(err)
		}
		pw, err := predictor.Predict(wf, predictor.Config{Params: params, Cost: model, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		pb, err := predictor.Predict(bc, predictor.Config{Params: params, Cost: model, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("b=%d: wavefront %.0fµs vs broadcast %.0fµs (%.2fx)",
			b, pw.Total, pb.Total, pb.Total/pw.Total)
		return pw.Total, pb.Total
	}
	wSmall, bSmall := predictBoth(8)
	if !(bSmall < wSmall) {
		t.Errorf("b=8: broadcast %g not below message-bound wavefront %g", bSmall, wSmall)
	}
	wMid, bMid := predictBoth(16)
	if !(wMid < bMid) {
		t.Errorf("b=16: wavefront %g not below broadcast %g", wMid, bMid)
	}
}

func TestPredictorStepProfile(t *testing.T) {
	g := Grid{NB: 6, B: 8}
	pr, err := BuildProgram(g, layout.Diagonal(4, g.NB))
	if err != nil {
		t.Fatal(err)
	}
	p, err := predictor.Predict(pr, predictor.Config{
		Params: loggp.MeikoCS2(4), Cost: cost.DefaultAnalytic(), Seed: 1,
		CollectSteps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PerStep) != len(pr.Steps) {
		t.Fatalf("profile steps = %d, want %d", len(p.PerStep), len(pr.Steps))
	}
	prev := 0.0
	for i, sp := range p.PerStep {
		if sp.Finish < prev {
			t.Fatalf("step %d finish %g below previous %g", i, sp.Finish, prev)
		}
		prev = sp.Finish
		if sp.Comp < 0 || sp.CommAdvance < 0 {
			t.Fatalf("step %d has negative components: %+v", i, sp)
		}
	}
	if p.PerStep[len(p.PerStep)-1].Finish != p.Total {
		t.Fatalf("last step finish %g != total %g", p.PerStep[len(p.PerStep)-1].Finish, p.Total)
	}
	// Without the flag no profile is collected.
	p2, err := predictor.Predict(pr, predictor.Config{
		Params: loggp.MeikoCS2(4), Cost: cost.DefaultAnalytic(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.PerStep != nil {
		t.Fatal("profile collected without CollectSteps")
	}
}
