// Package profiling wires the standard pprof profiles into the CLIs:
// the -cpuprofile/-memprofile flags of cmd/experiments and cmd/gepredict
// feed Start, and the resulting files open directly in `go tool pprof`.
// The scheduler-core benchmarks were tuned off exactly these profiles
// (see DESIGN.md §perf).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile when cpuPath is non-empty and returns a
// stop function that ends the CPU profile and, when memPath is
// non-empty, writes a heap profile. The stop function is idempotent, so
// callers both defer it and invoke it explicitly before os.Exit paths.
// Empty paths make Start (and its stop function) a no-op.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
