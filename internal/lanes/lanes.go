// Package lanes advances many Monte-Carlo samples of one program —
// "lanes" — through the quiet-mode schedulers in lockstep: one pass
// over the decoded program structure drives every lane's standard
// (Figure 2) and worst-case (Section 4.2) replay, with the per-lane
// state laid out structure-of-arrays (clocks and gap floors lane-major,
// per-lane hash-derived RNG streams and fault injectors).
//
// A scalar Monte-Carlo envelope replays the program once per sample,
// re-paying per sample everything that does not depend on the sample:
// program and pattern validation, the arena decode of every
// communication step, the per-step computation-cost sums, session
// reconfiguration, and the indexed scheduler structures. The lane
// engine hoists all of it: the program is validated and decoded once
// (flat per-processor send windows, in-degrees, sender masks, byte
// classes), the unperturbed computation charges are summed once per
// step and shared, and each lane's per-class LogGP derivatives (arrival
// delay, like/unlike operation intervals) are tabulated once per lane.
// The scheduler cores themselves are leaner than the sessions': because
// every communication phase starts and ends with empty receive queues,
// only clocks and gap floors persist per lane; receive buffers, send
// heads and candidate caches are step-transient scratch shared by all
// lanes. Receive queues are not heaps: a step's messages are grouped
// into runs, one per (sender, receiver) pair, and a sender's arrivals
// at a fixed receiver are almost always nondecreasing (its start times
// only grow), so a push is an append (with a rare ordered insert) and
// a pop scans the heads of the receiver's few runs — a two-or-three-way
// merge instead of a heap sift. Scans run over bitmasks of live
// processors, and a processor that remains the strict minimum after a
// commit keeps committing without a rescan (the common case in
// broadcast-shaped steps), so the per-lane cost approaches the bare
// per-message float arithmetic. Lane results
// are bit-identical to per-sample predictor.Evaluator replays: the
// cores replicate the schedulers' reference loops
// (sim.runPaperReference, worstcase.runReference — the oracles the
// session cores are differentially tested against) decision for
// decision, including when tie-break randomness is consumed.
//
// Divergence between lanes is handled two ways:
//
//   - Value divergence — perturbed LogGP charges, fault retransmit
//     busy/delay charges, deadlock-break choices — stays inside the
//     lane's own state: every lane owns its clocks, gap floors, two
//     tie-break RNG streams (standard and worst-case, seeded like the
//     scalar sessions) and its compiled fault injector.
//
//   - Branch divergence — a message exhausting its retries aborts the
//     sample — masks the lane out: the lane records its error (the
//     *faults.LossError is preserved in the chain) and is skipped for
//     the rest of the run, exactly as the scalar path abandons the
//     sample. No scalar replay is needed for masked lanes: the abort
//     point is mid-step and the lane's remaining schedule is never
//     observed by anyone.
//
// Fault decisions are pure functions of (plan seed, identities), never
// of evaluation order (see internal/faults), so interleaving lanes
// cannot leak state between them.
package lanes

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"loggpsim/internal/cost"
	"loggpsim/internal/faults"
	"loggpsim/internal/loggp"
	"loggpsim/internal/program"
)

// Lane configures one Monte-Carlo sample: its (possibly perturbed)
// machine, its scheduler tie-break seed, and its fault plan.
type Lane struct {
	// Params is the lane's LogGP machine description.
	Params loggp.Params
	// Seed seeds the lane's two tie-break RNG streams exactly as
	// predictor.Config.Seed seeds the scalar sessions.
	Seed int64
	// Faults is the lane's fault plan (seed included); the zero plan
	// injects nothing.
	Faults faults.Plan
}

// Config carries the lane-shared configuration.
type Config struct {
	// Cost prices the basic operations; it is shared by all lanes (the
	// robust sweep perturbs the machine, not the measured operation
	// costs), and per-lane computation perturbations are applied on top.
	Cost cost.Model
	// Ctx, when non-nil, deadline-bounds the run at lane-step
	// granularity: it is polled once per program step (each step
	// advancing every live lane), and a cancelled or expired context
	// aborts the whole run with an error wrapping ctx.Err().
	Ctx context.Context
}

// Result is one lane's outcome.
type Result struct {
	// Total and TotalWorst are the standard and worst-case predicted
	// running times, bit-identical to predictor.Prediction's fields for
	// an equivalent scalar configuration.
	Total      float64
	TotalWorst float64
	// Err, when non-nil, marks a masked lane: the replay aborted (a
	// *faults.LossError in the chain means the sample lost a message)
	// and the totals are meaningless.
	Err error
}

// stepPlan is the decoded structure of one communication step. The
// messages are laid out in send slots grouped by sender (pattern order
// within each group): processor q sends slots off[q]..off[q+1], and the
// parallel sDst/sCls/sRun/sOrig arrays give each slot's destination,
// byte class, receive run and pattern index, so a sender's commits read
// four sequential streams instead of chasing a message table. A run is
// the slice of arrivals one sender delivers to one receiver; runs are
// grouped per receiver (runIdx[q]..runIdx[q+1]) and each owns a
// fixed-capacity region of the step's arrival buffer at runBase[r].
type stepPlan struct {
	off      []int32 // len p+1: send-slot range per sender
	sDst     []int32 // per slot: destination processor
	sCls     []int32 // per slot: byte class (engine classBytes index)
	sRun     []int32 // per slot: receive run (step-local)
	sOrig    []int32 // per slot: index within the pattern (fault identity)
	inCnt    []int32
	sendMask []uint64
	runIdx   []int32 // len p+1: run-table range per receiver
	runBase  []int32 // per run: base offset into the arrival buffer
	nRuns    int
	nmsgs    int
}

const (
	candRecv = uint8(0)
	candSend = uint8(1)
)

// Engine holds the lockstep state. The zero value is ready; Run may be
// called repeatedly (each call rebuilds the program plan and reuses the
// storage). An Engine must not be used concurrently.
type Engine struct {
	p, lanes, classes, words int

	// Program plan, shared across lanes.
	classBytes []int
	steps      []stepPlan
	baseDurs   [][]float64
	maxNmsgs   int // max messages in any one step (arrival-buffer size)
	maxRuns    int // max receive runs in any one step

	// Per-lane machine derivatives, lane-major [lane*classes + class].
	adTab       []float64 // ArrivalDelay(bytes)
	ivLikeTab   []float64 // Interval(k, k, bytes): like consecutive ops
	ivUnlikeTab []float64 // Interval(k, k', bytes), k != k'
	o           []float64 // Params.O per lane

	// Persistent per-lane-processor scheduler state, lane-major
	// [lane*p + proc]: the clocks and gap-floor carries. The floors hold
	// lastStart + Interval(last, kind, lastBytes), or zero before the
	// lane's first operation; clocks are non-negative, so
	// max(clock, floor) reproduces the sessions' earliest() exactly.
	ctStd, fsStd, frStd []float64
	ctWC, fsWC, frWC    []float64

	// Step-transient scratch, shared by all lanes (every communication
	// phase starts and ends with empty receive buffers, so nothing
	// below outlives one lane-step). qKey/qSeq/qGid form the arrival
	// buffer the step's receive runs live in; rHead/rFill are the
	// per-run consumed and filled counts.
	qKey           []float64
	qSeq, qCls     []int32
	rHead, rFill   []int32
	rKey           []float64 // cached head arrival per run (valid while non-empty)
	rSeq           []int32   // cached head sequence per run
	head           []int32 // next unsent send slot per sender
	toRecv, forced []int32
	candKey        []float64
	candKind       []uint8
	mask, pend     []uint64

	// Standard-algorithm selection tree: a tournament over tw (next
	// power of two >= p) leaves holding each unexhausted sender's clock
	// (+Inf otherwise), with per-node tie counts. Selecting the
	// minimum-clock sender, counting its ties and extracting the k-th
	// tied index — all in leaf (index) order, as the reference's scan
	// produces them — costs log p instead of a full rescan per commit.
	treeVal []float64
	treeCnt []int32
	tw      int

	// Per-receiver head cache: hRun[q] is the run holding q's earliest
	// pending arrival (-1 when none) and hKey[q] that arrival. A push
	// maintains it with one compare (a new entry only matters if it
	// becomes its own run's head and beats the cached key); only a pop
	// pays the scan over q's runs to rebuild it.
	hRun []int32
	hKey []float64

	rngStd, rngWC []*rand.Rand
	inj           []*faults.Injector
	errs          []error
	durs          []float64 // per-lane perturbed computation scratch
}

// Run advances every lane through the whole program and returns one
// Result per lane, in lane order. A non-nil error aborts all lanes
// (invalid shared inputs, or Config.Ctx done); per-lane failures land
// in Result.Err instead.
func Run(pr *program.Program, cfg Config, ls []Lane) ([]Result, error) {
	var e Engine
	return e.Run(pr, cfg, ls)
}

// Run is the method form, reusing the engine's storage across calls.
func (e *Engine) Run(pr *program.Program, cfg Config, ls []Lane) ([]Result, error) {
	if cfg.Cost == nil {
		return nil, fmt.Errorf("lanes: no cost model")
	}
	if len(ls) == 0 {
		return nil, fmt.Errorf("lanes: no lanes")
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if err := e.decode(pr, cfg.Cost); err != nil {
		return nil, err
	}
	e.prepare(pr.P, ls)

	for si := range e.steps {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("lanes: step %d of %d: %w", si, len(e.steps), err)
			}
		}
		sp := &e.steps[si]
		base := e.baseDurs[si]
		for l := range ls {
			if e.errs[l] != nil {
				continue
			}
			// Computation phase: the shared unperturbed charges, inflated
			// by the lane's injector exactly as the scalar predictor
			// inflates them (same step and processor identities).
			durs := base
			if inj := e.inj[l]; inj != nil {
				for q := range e.durs {
					e.durs[q] = inj.PerturbCompute(si, q, base[q])
				}
				durs = e.durs
			}
			lp := l * e.p
			for q := 0; q < e.p; q++ {
				e.ctStd[lp+q] += durs[q]
				e.ctWC[lp+q] += durs[q]
			}
			if sp.nmsgs == 0 {
				continue // nothing to schedule; both loops would no-op
			}
			// Each scheduler run resets the shared receive buffers on
			// entry, so a lane dying mid-step cannot leak undelivered
			// arrivals into the next lane.
			e.runStd(sp, si, l)
			if e.errs[l] == nil {
				e.runWC(sp, si, l)
			}
		}
	}

	out := make([]Result, len(ls))
	for l := range ls {
		if e.errs[l] != nil {
			out[l].Err = e.errs[l]
			continue
		}
		lp := l * e.p
		for q := 0; q < e.p; q++ {
			if c := e.ctStd[lp+q]; c > out[l].Total {
				out[l].Total = c
			}
			if c := e.ctWC[lp+q]; c > out[l].TotalWorst {
				out[l].TotalWorst = c
			}
		}
	}
	return out, nil
}

// decode builds the shared program plan: per-step flat send windows,
// in-degrees, sender masks, receive-run tables and byte classes, plus
// the unperturbed computation-charge sums. The program is already
// validated.
func (e *Engine) decode(pr *program.Program, model cost.Model) error {
	e.p = pr.P
	e.words = (pr.P + 63) / 64
	e.classBytes = e.classBytes[:0]
	e.steps = e.steps[:0]
	e.baseDurs = e.baseDurs[:0]
	e.maxNmsgs, e.maxRuns = 0, 0
	classOf := make(map[int]int32)
	cnt := make([]int32, pr.P)
	fill := make([]int32, pr.P)
	cnt2 := make([]int32, pr.P*pr.P)  // per (src,dst) message count
	runOf := make([]int32, pr.P*pr.P) // per (src,dst) run index
	for si, s := range pr.Steps {
		durs := make([]float64, pr.P)
		for q := range durs {
			d := 0.0
			for _, call := range s.Comp[q] {
				d += model.Cost(call.Op, call.BlockSize)
			}
			if d < 0 {
				return fmt.Errorf("lanes: step %d: processor %d has negative computation time %g", si, q, d)
			}
			durs[q] = d
		}
		e.baseDurs = append(e.baseDurs, durs)
		sp := stepPlan{
			off:      make([]int32, pr.P+1),
			inCnt:    make([]int32, pr.P),
			sendMask: make([]uint64, e.words),
		}
		clear(cnt)
		nmsgs := 0
		for _, m := range s.Comm.Msgs {
			if m.Src == m.Dst {
				continue // local transfer: skipped by both schedulers
			}
			if _, ok := classOf[m.Bytes]; !ok {
				classOf[m.Bytes] = int32(len(e.classBytes))
				e.classBytes = append(e.classBytes, m.Bytes)
			}
			cnt[m.Src]++
			sp.inCnt[m.Dst]++
			cnt2[m.Src*pr.P+m.Dst]++
			nmsgs++
		}
		sp.nmsgs = nmsgs
		if nmsgs > e.maxNmsgs {
			e.maxNmsgs = nmsgs
		}
		off := int32(0)
		for q := 0; q < pr.P; q++ {
			sp.off[q] = off
			off += cnt[q]
			if cnt[q] > 0 {
				sp.sendMask[q>>6] |= 1 << (q & 63)
			}
		}
		sp.off[pr.P] = off
		// Receive runs: one per (sender, receiver) pair with traffic,
		// grouped per receiver, each owning a region of the step's
		// arrival buffer sized to the pair's message count.
		sp.runIdx = make([]int32, pr.P+1)
		nRuns, base := int32(0), int32(0)
		for dst := 0; dst < pr.P; dst++ {
			sp.runIdx[dst] = nRuns
			for src := 0; src < pr.P; src++ {
				if c := cnt2[src*pr.P+dst]; c > 0 {
					runOf[src*pr.P+dst] = nRuns
					sp.runBase = append(sp.runBase, base)
					base += c
					nRuns++
				}
			}
		}
		sp.runIdx[pr.P] = nRuns
		sp.nRuns = int(nRuns)
		if sp.nRuns > e.maxRuns {
			e.maxRuns = sp.nRuns
		}
		// Second pass: fill the send slots, grouped by sender in
		// pattern order.
		sp.sDst = make([]int32, nmsgs)
		sp.sCls = make([]int32, nmsgs)
		sp.sRun = make([]int32, nmsgs)
		sp.sOrig = make([]int32, nmsgs)
		copy(fill, sp.off[:pr.P])
		for idx, m := range s.Comm.Msgs {
			if m.Src == m.Dst {
				continue
			}
			slot := fill[m.Src]
			fill[m.Src] = slot + 1
			sp.sDst[slot] = int32(m.Dst)
			sp.sCls[slot] = classOf[m.Bytes]
			sp.sRun[slot] = runOf[m.Src*pr.P+m.Dst]
			sp.sOrig[slot] = int32(idx)
			cnt2[m.Src*pr.P+m.Dst] = 0
		}
		e.steps = append(e.steps, sp)
	}
	e.classes = len(e.classBytes)
	return nil
}

// growF64 / growI32 resize scratch to n entries, reusing backing.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// prepare sizes and initializes the engine state: fresh per-lane clocks
// and gap floors, per-lane RNG pairs, injectors and per-class LogGP
// tables, and the shared scratch (the arrival buffer sized once to the
// program's largest step).
func (e *Engine) prepare(p int, ls []Lane) {
	e.lanes = len(ls)
	n := e.lanes * p
	e.ctStd, e.fsStd, e.frStd = growF64(e.ctStd, n), growF64(e.fsStd, n), growF64(e.frStd, n)
	e.ctWC, e.fsWC, e.frWC = growF64(e.ctWC, n), growF64(e.fsWC, n), growF64(e.frWC, n)

	e.head = growI32(e.head, p)
	e.toRecv, e.forced = growI32(e.toRecv, p), growI32(e.forced, p)
	e.candKey = growF64(e.candKey, p)
	if cap(e.candKind) < p {
		e.candKind = make([]uint8, p)
	}
	e.candKind = e.candKind[:p]
	e.hRun, e.hKey = growI32(e.hRun, p), growF64(e.hKey, p)
	e.qKey = growF64(e.qKey, e.maxNmsgs)
	e.qSeq, e.qCls = growI32(e.qSeq, e.maxNmsgs), growI32(e.qCls, e.maxNmsgs)
	e.rHead, e.rFill = growI32(e.rHead, e.maxRuns), growI32(e.rFill, e.maxRuns)
	e.rKey, e.rSeq = growF64(e.rKey, e.maxRuns), growI32(e.rSeq, e.maxRuns)
	e.tw = 1
	for e.tw < p {
		e.tw <<= 1
	}
	e.treeVal = growF64(e.treeVal, 2*e.tw)
	e.treeCnt = growI32(e.treeCnt, 2*e.tw)
	if cap(e.mask) < e.words {
		e.mask = make([]uint64, e.words)
		e.pend = make([]uint64, e.words)
	}
	e.mask, e.pend = e.mask[:e.words], e.pend[:e.words]
	e.durs = growF64(e.durs, p)

	nc := e.lanes * e.classes
	e.adTab = growF64(e.adTab, nc)
	e.ivLikeTab, e.ivUnlikeTab = growF64(e.ivLikeTab, nc), growF64(e.ivUnlikeTab, nc)
	e.o = growF64(e.o, e.lanes)

	if cap(e.rngStd) < e.lanes {
		e.rngStd = make([]*rand.Rand, e.lanes)
		e.rngWC = make([]*rand.Rand, e.lanes)
	}
	e.rngStd, e.rngWC = e.rngStd[:e.lanes], e.rngWC[:e.lanes]
	if cap(e.inj) < e.lanes {
		e.inj = make([]*faults.Injector, e.lanes)
	}
	e.inj = e.inj[:e.lanes]
	if cap(e.errs) < e.lanes {
		e.errs = make([]error, e.lanes)
	}
	e.errs = e.errs[:e.lanes]

	for l, ln := range ls {
		e.errs[l] = nil
		e.inj[l] = nil
		// The same acceptance checks the scalar sessions apply in
		// Reconfigure; a rejected lane fails alone, like its sample would.
		if err := ln.Params.Validate(); err != nil {
			e.errs[l] = err
			continue
		}
		if p > ln.Params.P {
			e.errs[l] = fmt.Errorf("lanes: program uses %d processors but machine has P=%d", p, ln.Params.P)
			continue
		}
		inj, err := ln.Faults.Injector(ln.Params)
		if err != nil {
			e.errs[l] = err
			continue
		}
		e.inj[l] = inj
		// Two owned streams per lane, seeded exactly like the scalar
		// standard and worst-case sessions (both from the same seed, with
		// independent state).
		if e.rngStd[l] == nil {
			e.rngStd[l] = rand.New(rand.NewSource(ln.Seed))
			e.rngWC[l] = rand.New(rand.NewSource(ln.Seed))
		} else {
			e.rngStd[l].Seed(ln.Seed)
			e.rngWC[l].Seed(ln.Seed)
		}
		e.o[l] = ln.Params.O
		// Per-class derivatives, evaluated with the exact expressions of
		// loggp.Params.Interval and ArrivalDelay.
		lc := l * e.classes
		for c, bytes := range e.classBytes {
			ser := ln.Params.Serialization(bytes)
			floor := max(ln.Params.O, ser)
			like := max(ln.Params.Gap, floor)
			unlike := like
			if ln.Params.NoCrossGap {
				unlike = floor
			}
			e.adTab[lc+c] = ln.Params.ArrivalDelay(bytes)
			e.ivLikeTab[lc+c] = like
			e.ivUnlikeTab[lc+c] = unlike
		}
	}
}

// runStd replays one communication step of one lane under the standard
// algorithm, replicating sim.runPaperReference: the minimum-clock
// sender (random tie-break, randomness consumed only on genuine ties)
// chooses between its next send and its earliest pending receive,
// receive winning start-time ties; then every processor drains its
// remaining receives in index order. Selection runs on the tournament
// tree — one leaf update and a root read per commit — whose tie counts
// and leaf order reproduce the reference scan's tie list exactly.
func (e *Engine) runStd(sp *stepPlan, si, l int) {
	p := e.p
	lp := l * p
	ct := e.ctStd[lp : lp+p : lp+p]
	fs := e.fsStd[lp : lp+p : lp+p]
	fr := e.frStd[lp : lp+p : lp+p]
	head := e.head
	copy(head, sp.off[:p])
	clear(e.rHead[:sp.nRuns])
	clear(e.rFill[:sp.nRuns])
	hRun, hKey := e.hRun, e.hKey
	for q := 0; q < p; q++ {
		hRun[q] = -1
	}
	seq := int32(0)
	rng := e.rngStd[l]
	o := e.o[l]
	inj := e.inj[l]
	lc := l * e.classes

	// Build the selection tree: leaves hold the clocks of processors
	// with unsent messages, +Inf otherwise.
	tw := e.tw
	tv, tc := e.treeVal, e.treeCnt
	for i := 0; i < tw; i++ {
		leaf := math.Inf(1)
		if i < p && sp.off[i] < sp.off[i+1] {
			leaf = ct[i]
		}
		tv[tw+i], tc[tw+i] = leaf, 1
	}
	for n := tw - 1; n >= 1; n-- {
		lv, rv := tv[2*n], tv[2*n+1]
		switch {
		case lv < rv:
			tv[n], tc[n] = lv, tc[2*n]
		case lv > rv:
			tv[n], tc[n] = rv, tc[2*n+1]
		default:
			tv[n], tc[n] = lv, tc[2*n]+tc[2*n+1]
		}
	}

	for {
		minT := tv[1]
		if math.IsInf(minT, 1) {
			break
		}
		// Descend to the minimum-clock leaf. With ties, the reference
		// collects tied processors in index order and consumes one
		// Intn; descending by per-node tie counts selects the k-th
		// tied leaf — the same draw against the same ordering.
		n := 1
		if tc[1] > 1 {
			k := int32(rng.Intn(int(tc[1])))
			for n < tw {
				left := 2 * n
				if tv[left] == minT {
					if k < tc[left] {
						n = left
						continue
					}
					k -= tc[left]
				}
				n = 2*n + 1
			}
		} else {
			for n < tw {
				if tv[2*n] == minT {
					n = 2 * n
				} else {
					n = 2*n + 1
				}
			}
		}
		proc := n - tw

		startSend := ct[proc]
		if f := fs[proc]; f > startSend {
			startSend = f
		}
		startRecv := math.Inf(1)
		if hRun[proc] >= 0 {
			startRecv = ct[proc]
			if f := fr[proc]; f > startRecv {
				startRecv = f
			}
			if a := hKey[proc]; a > startRecv {
				startRecv = a
			}
		}
		leaf := math.Inf(1) // proc's new tree leaf: clock, or +Inf once exhausted
		if startSend < startRecv {
			slot := head[proc]
			head[proc] = slot + 1
			c := int(sp.sCls[slot])
			dst := int(sp.sDst[slot])
			arrival := startSend + e.adTab[lc+c]
			busy := 0.0
			if inj != nil {
				orig := int(sp.sOrig[slot])
				extraBusy, delay, err := inj.SendOutcome(si, orig, proc, dst, e.classBytes[c], startSend)
				if err != nil {
					e.errs[l] = fmt.Errorf("lanes: message %d (%d->%d): %w", orig, proc, dst, err)
					return
				}
				if math.IsNaN(extraBusy) || math.IsInf(extraBusy, 0) || extraBusy < 0 {
					e.errs[l] = fmt.Errorf("lanes: message %d (%d->%d): fault hook returned bad busy time %g",
						orig, proc, dst, extraBusy)
					return
				}
				busy = extraBusy
				arrival += delay
				if math.IsNaN(arrival) || math.IsInf(arrival, 0) {
					e.errs[l] = fmt.Errorf("lanes: message %d (%d->%d): non-finite arrival time %g from fault hook",
						orig, proc, dst, arrival)
					return
				}
			}
			e.push(sp, sp.sRun[slot], dst, arrival, seq, int32(c))
			seq++
			ct[proc] = startSend + o + busy
			fs[proc] = startSend + e.ivLikeTab[lc+c]
			fr[proc] = startSend + e.ivUnlikeTab[lc+c]
			if int32(slot)+1 < sp.off[proc+1] {
				leaf = ct[proc]
			}
		} else {
			c := int(e.popRun(sp, hRun[proc]))
			e.rebuildHead(sp, proc)
			ct[proc] = startRecv + o
			fs[proc] = startRecv + e.ivUnlikeTab[lc+c]
			fr[proc] = startRecv + e.ivLikeTab[lc+c]
			leaf = ct[proc]
		}
		// Re-seat proc in the tree along its leaf-to-root path.
		tv[n] = leaf
		for n >>= 1; n >= 1; n >>= 1 {
			lv, rv := tv[2*n], tv[2*n+1]
			switch {
			case lv < rv:
				tv[n], tc[n] = lv, tc[2*n]
			case lv > rv:
				tv[n], tc[n] = rv, tc[2*n+1]
			default:
				tv[n], tc[n] = lv, tc[2*n]+tc[2*n+1]
			}
		}
	}
	// Drain phase: remaining receives per processor in index order.
	for q := 0; q < p; q++ {
		for hRun[q] >= 0 {
			start := ct[q]
			if f := fr[q]; f > start {
				start = f
			}
			if a := hKey[q]; a > start {
				start = a
			}
			c := int(e.popRun(sp, hRun[q]))
			e.rebuildHead(sp, q)
			ct[q] = start + o
			fs[q] = start + e.ivUnlikeTab[lc+c]
			fr[q] = start + e.ivLikeTab[lc+c]
		}
	}
}

// push appends an arrival to its receive run. A sender's start times
// only grow, so within a run arrivals are nondecreasing unless fault
// delays or mixed byte classes reorder them — then the entry is
// inserted in (arrival, seq) order, which keeps every run sorted and
// makes the run-head merge pop exactly what a (key, seq) heap would.
// The receiver's head cache needs at most one compare: the new entry
// only matters if it heads its own run and beats the cached key (on a
// key tie the cache keeps the earlier push, as the seq order demands).
func (e *Engine) push(sp *stepPlan, run int32, dst int, arrival float64, seq, cls int32) {
	b := sp.runBase[run]
	f := e.rFill[run]
	h := e.rHead[run]
	atHead := f == h
	if f > h && e.qKey[b+f-1] > arrival {
		pos := h
		for e.qKey[b+pos] <= arrival {
			pos++
		}
		copy(e.qKey[b+pos+1:b+f+1], e.qKey[b+pos:b+f])
		copy(e.qSeq[b+pos+1:b+f+1], e.qSeq[b+pos:b+f])
		copy(e.qCls[b+pos+1:b+f+1], e.qCls[b+pos:b+f])
		e.qKey[b+pos], e.qSeq[b+pos], e.qCls[b+pos] = arrival, seq, cls
		atHead = pos == h
	} else {
		e.qKey[b+f], e.qSeq[b+f], e.qCls[b+f] = arrival, seq, cls
	}
	e.rFill[run] = f + 1
	if atHead {
		e.rKey[run], e.rSeq[run] = arrival, seq
		if e.hRun[dst] < 0 || arrival < e.hKey[dst] {
			e.hRun[dst], e.hKey[dst] = run, arrival
		}
	}
}

// popRun consumes run r's head entry, returning its byte class, and
// refreshes the run's cached head so rebuildHead never has to chase
// pointers into the arrival buffer.
func (e *Engine) popRun(sp *stepPlan, r int32) int32 {
	b := sp.runBase[r]
	h := e.rHead[r]
	c := e.qCls[b+h]
	h++
	e.rHead[r] = h
	if h < e.rFill[r] {
		e.rKey[r], e.rSeq[r] = e.qKey[b+h], e.qSeq[b+h]
	}
	return c
}

// rebuildHead rescans receiver q's runs after a pop to restore the
// head cache: the earliest (arrival, seq) among the run heads. The
// per-run cached keys keep the scan inside a few contiguous cache
// lines instead of striding across the arrival buffer.
func (e *Engine) rebuildHead(sp *stepPlan, q int) {
	prun, headK, headS := int32(-1), 0.0, int32(0)
	rHead, rFill := e.rHead, e.rFill
	rKey, rSeq := e.rKey, e.rSeq
	for r := sp.runIdx[q]; r < sp.runIdx[q+1]; r++ {
		if rHead[r] == rFill[r] {
			continue
		}
		if k := rKey[r]; prun < 0 || k < headK || (k == headK && rSeq[r] < headS) {
			headK, headS, prun = k, rSeq[r], r
		}
	}
	e.hRun[q], e.hKey[q] = prun, headK
}

// runWC replays one communication step of one lane under the
// worst-case strategy, replicating worstcase.runReference through the
// same incremental candidate cache the session's tournament core uses:
// after a commit only the committed processor's candidates — and, for a
// send, the destination's receive candidate — can change, so only those
// are recomputed; the scan takes the leftmost strictly smallest cached
// start (receive winning ties within a processor). A processor stays in
// a commit burst while its refreshed key is strictly below every other
// key (other keys never rise in between: a push can only lower the
// destination's). Deadlocks are broken by releasing a random blocked
// sender — one RNG draw per break, unconditionally, like both session
// loops.
func (e *Engine) runWC(sp *stepPlan, si, l int) {
	p := e.p
	lp := l * p
	ct := e.ctWC[lp : lp+p : lp+p]
	fs := e.fsWC[lp : lp+p : lp+p]
	fr := e.frWC[lp : lp+p : lp+p]
	head := e.head
	toRecv, forced := e.toRecv, e.forced
	key, kind := e.candKey, e.candKind
	cand, pend := e.mask, e.pend
	copy(pend, sp.sendMask)
	copy(head, sp.off[:p])
	clear(e.rHead[:sp.nRuns])
	clear(e.rFill[:sp.nRuns])
	hRun := e.hRun
	for q := 0; q < p; q++ {
		hRun[q] = -1
	}
	seq := int32(0)
	rng := e.rngWC[l]
	o := e.o[l]
	inj := e.inj[l]
	lc := l * e.classes

	// Initial candidates: receive buffers are empty, so only processors
	// with sends and no pending receives are eligible.
	for w := range cand {
		cand[w] = 0
	}
	for q := 0; q < p; q++ {
		toRecv[q] = sp.inCnt[q]
		forced[q] = 0
		key[q] = math.Inf(1)
		if head[q] < sp.off[q+1] && toRecv[q] == 0 {
			key[q] = ct[q]
			if f := fs[q]; f > key[q] {
				key[q] = f
			}
			kind[q] = candSend
			cand[q>>6] |= 1 << (q & 63)
		}
	}

	for {
		// Scan: leftmost strict minimum key over live candidates, with
		// the runner-up bounding the burst.
		best, bestK, min2 := -1, math.Inf(1), math.Inf(1)
		for w, mw := range cand {
			for m := mw; m != 0; m &= m - 1 {
				q := w<<6 | bits.TrailingZeros64(m)
				k := key[q]
				if k < bestK {
					min2 = bestK
					bestK, best = k, q
				} else if k < min2 {
					min2 = k
				}
			}
		}
		if best < 0 {
			// No candidate: every processor with messages left is blocked
			// on unreceived messages — release one at random (index-order
			// list, one draw even for a single blocked sender).
			blocked := 0
			for _, mw := range pend {
				blocked += bits.OnesCount64(mw)
			}
			if blocked == 0 {
				break
			}
			k := rng.Intn(blocked)
			release := -1
		rel:
			for w, mw := range pend {
				for m := mw; m != 0; m &= m - 1 {
					if k == 0 {
						release = w<<6 | bits.TrailingZeros64(m)
						break rel
					}
					k--
				}
			}
			forced[release]++
			e.refreshWC(sp, lp, release)
			continue
		}
		// Burst on best: keys of other processors never rise between
		// best's commits (a push only lowers the destination's), so
		// best remains the leftmost strict minimum while its refreshed
		// key stays strictly below min2.
		for {
			start := key[best]
			if kind[best] == candSend {
				if toRecv[best] != 0 {
					forced[best]--
				}
				slot := head[best]
				head[best] = slot + 1
				c := int(sp.sCls[slot])
				dst := int(sp.sDst[slot])
				arrival := start + e.adTab[lc+c]
				busy := 0.0
				if inj != nil {
					orig := int(sp.sOrig[slot])
					extraBusy, delay, err := inj.SendOutcome(si, orig, best, dst, e.classBytes[c], start)
					if err != nil {
						e.errs[l] = fmt.Errorf("lanes: message %d (%d->%d): %w", orig, best, dst, err)
						return
					}
					arrival += delay
					busy = extraBusy
					if math.IsNaN(arrival) || math.IsInf(arrival, 0) || math.IsNaN(busy) || math.IsInf(busy, 0) || busy < 0 {
						e.errs[l] = fmt.Errorf("lanes: message %d (%d->%d): bad fault charge (busy %g, arrival %g)",
							orig, best, dst, busy, arrival)
						return
					}
				}
				e.push(sp, sp.sRun[slot], dst, arrival, seq, int32(c))
				seq++
				ct[best] = start + o + busy
				fs[best] = start + e.ivLikeTab[lc+c]
				fr[best] = start + e.ivUnlikeTab[lc+c]
				if head[best] == sp.off[best+1] {
					pend[best>>6] &^= 1 << (best & 63)
				}
				e.refreshWC(sp, lp, best)
				e.refreshWC(sp, lp, dst)
				if k := key[dst]; k < min2 {
					min2 = k
				}
			} else {
				c := int(e.popRun(sp, hRun[best]))
				e.rebuildHead(sp, best)
				toRecv[best]--
				ct[best] = start + o
				fs[best] = start + e.ivUnlikeTab[lc+c]
				fr[best] = start + e.ivLikeTab[lc+c]
				e.refreshWC(sp, lp, best)
			}
			if key[best] >= min2 {
				break // rescan applies the exact leftmost tie rule
			}
		}
	}
}

// refreshWC recomputes processor q's worst-case candidate (key, kind,
// live bit) from the clocks, floors and the receiver head cache. lp is
// the lane's base offset into the worst-case state arrays.
func (e *Engine) refreshWC(sp *stepPlan, lp, q int) {
	startSend := math.Inf(1)
	if e.head[q] < sp.off[q+1] && (e.toRecv[q] == 0 || e.forced[q] > 0) {
		startSend = e.ctWC[lp+q]
		if f := e.fsWC[lp+q]; f > startSend {
			startSend = f
		}
	}
	startRecv := math.Inf(1)
	if e.hRun[q] >= 0 {
		startRecv = e.ctWC[lp+q]
		if f := e.frWC[lp+q]; f > startRecv {
			startRecv = f
		}
		if a := e.hKey[q]; a > startRecv {
			startRecv = a
		}
	}
	k, kd := startRecv, candRecv
	if startSend < k {
		k, kd = startSend, candSend
	}
	e.candKey[q], e.candKind[q] = k, kd
	if math.IsInf(k, 1) {
		e.mask[q>>6] &^= 1 << (q & 63)
	} else {
		e.mask[q>>6] |= 1 << (q & 63)
	}
}
