package lanes_test

// Engine micro-benchmark on the dominant Figure-7 instance (960x960,
// b=8, P=8): isolates the lockstep scheduler cores from the rest of
// the envelope pipeline for optimization work.

import (
	"testing"

	"loggpsim/internal/cost"
	"loggpsim/internal/ge"
	"loggpsim/internal/lanes"
	"loggpsim/internal/layout"
	"loggpsim/internal/loggp"
)

func BenchmarkEngineFigure7B8(b *testing.B) {
	g, err := ge.NewGrid(960, 8)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := ge.BuildProgram(g, layout.Diagonal(8, g.NB))
	if err != nil {
		b.Fatal(err)
	}
	ls := make([]lanes.Lane, 64)
	for i := range ls {
		m := loggp.MeikoCS2(8)
		m.L *= 1 + 0.001*float64(i)
		ls[i] = lanes.Lane{Params: m, Seed: int64(i + 1)}
	}
	var eng lanes.Engine
	cfg := lanes.Config{Cost: cost.DefaultAnalytic()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(pr, cfg, ls); err != nil {
			b.Fatal(err)
		}
	}
}
