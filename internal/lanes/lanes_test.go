package lanes_test

// The lane engine's contract is bit-identity: every lane must finish at
// exactly the totals a scalar predictor replay produces for the same
// configuration. The corpus stresses every divergence source the
// schedulers have — tie-break RNG consumption (symmetric patterns),
// worst-case deadlock releases (cyclic rings), rendezvous and
// no-cross-gap machines, mixed message sizes (byte classes), fault
// retransmits, jitter, stragglers, degradation windows, and lanes that
// lose a message and are masked out mid-run.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"loggpsim/internal/blockops"
	"loggpsim/internal/cost"
	"loggpsim/internal/faults"
	"loggpsim/internal/ge"
	"loggpsim/internal/lanes"
	"loggpsim/internal/layout"
	"loggpsim/internal/loggp"
	"loggpsim/internal/predictor"
	"loggpsim/internal/program"
	"loggpsim/internal/trace"
)

// build wraps patterns into a program, interleaving computation phases
// of uneven per-processor cost so clocks both collide (consuming
// tie-break randomness) and spread (reordering sends).
func build(p int, pats ...*trace.Pattern) *program.Program {
	pr := program.New(p)
	for i, pt := range pats {
		s := pr.AddStep()
		for q := 0; q < p; q++ {
			for r := 0; r < (i+q)%3; r++ {
				s.AddOp(q, blockops.Op1, 8+q%2)
			}
		}
		s.Comm = pt
	}
	return pr
}

func corpus(t *testing.T) map[string]*program.Program {
	t.Helper()
	grid, err := ge.NewGrid(96, 12)
	if err != nil {
		t.Fatal(err)
	}
	gePr, err := ge.BuildProgram(grid, layout.Diagonal(6, grid.NB))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*program.Program{
		// Cyclic rings every step: the worst-case scheduler deadlocks and
		// must consume its release RNG repeatedly.
		"rings":     build(6, trace.Ring(6, 112), trace.Ring(6, 112), trace.Ring(6, 700)),
		"symmetric": build(8, trace.AllToAll(8, 64), trace.Butterfly(3, 512)),
		"figure3":   build(10, trace.Figure3()),
		// Mixed message sizes across steps: many byte classes.
		"random": build(9, trace.Random(9, 40, 2048, 5), trace.RandomDAG(9, 30, 4096, 3), trace.Shift(9, 2, 300)),
		"empty":  build(4, trace.New(4), trace.New(4)),
		"ge":     gePr,
	}
}

// machines returns lane machine variants for p processors: presets, an
// ablated no-cross-gap machine, and a rendezvous threshold splitting
// the corpus' message sizes across both protocols.
func machines(p int) []loggp.Params {
	noCross := loggp.MeikoCS2(p)
	noCross.NoCrossGap = true
	rendez := loggp.Cluster(p)
	rendez.S = 256
	return []loggp.Params{loggp.MeikoCS2(p), loggp.LowOverhead(p), noCross, rendez}
}

func plans() []faults.Plan {
	return []faults.Plan{
		{},
		{Seed: 3, Drop: faults.Drop{Prob: 0.1}},
		{Seed: 9, Drop: faults.Drop{Prob: 0.08}, Compute: faults.Compute{Jitter: 0.4, Stragglers: 2, Factor: 3}},
		{Seed: 5, Degrade: []faults.Degrade{{Start: 10, End: 500, GScale: 2.5, LScale: 2}}},
		// Tight retry budget: lanes will lose messages and mask out.
		{Seed: 7, Drop: faults.Drop{Prob: 0.3, MaxRetries: 1}},
	}
}

// TestLanesMatchScalarPredictor fans every corpus program across lanes
// covering the machine × seed × fault-plan grid in one engine run, then
// replays each lane scalar through the predictor and demands exact
// equality — totals bitwise, losses on exactly the same lanes.
func TestLanesMatchScalarPredictor(t *testing.T) {
	model := cost.DefaultAnalytic()
	for name, pr := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			var ls []lanes.Lane
			for mi, m := range machines(pr.P) {
				for si, seed := range []int64{1, 42, 999} {
					plan := plans()[(mi+si)%len(plans())]
					// Scale a couple of parameters so lanes disagree on the
					// LogGP vector, not just on seeds and faults.
					m := m
					m.L *= 1 + 0.1*float64(si)
					m.Gap *= 1 + 0.05*float64(mi)
					ls = append(ls, lanes.Lane{Params: m, Seed: seed, Faults: plan})
				}
			}
			var eng lanes.Engine
			results, err := eng.Run(pr, lanes.Config{Cost: model}, ls)
			if err != nil {
				t.Fatal(err)
			}
			e := predictor.NewEvaluator()
			lost := 0
			for l, res := range results {
				var pred predictor.Prediction
				cfg := predictor.Config{Params: ls[l].Params, Cost: model, Seed: ls[l].Seed, Faults: ls[l].Faults}
				refErr := e.PredictInto(&pred, pr, cfg)
				if refErr != nil {
					var le *faults.LossError
					if !errors.As(refErr, &le) {
						t.Fatalf("lane %d: scalar reference failed: %v", l, refErr)
					}
					if res.Err == nil || !errors.As(res.Err, &le) {
						t.Fatalf("lane %d: scalar lost a message (%v); lane returned %v, %g/%g",
							l, refErr, res.Err, res.Total, res.TotalWorst)
					}
					lost++
					continue
				}
				if res.Err != nil {
					t.Fatalf("lane %d: scalar succeeded but lane failed: %v", l, res.Err)
				}
				if res.Total != pred.Total || res.TotalWorst != pred.TotalWorst {
					t.Fatalf("lane %d: totals diverge from scalar replay:\nscalar %g / %g\nlane   %g / %g",
						l, pred.Total, pred.TotalWorst, res.Total, res.TotalWorst)
				}
			}
			if name == "rings" && lost == 0 {
				t.Fatal("no ring lane lost a message; masking went unexercised")
			}
		})
	}
}

// TestEngineReuse runs the same engine across different programs and
// lane counts; storage reuse must not leak state between runs.
func TestEngineReuse(t *testing.T) {
	model := cost.DefaultAnalytic()
	prs := corpus(t)
	var eng lanes.Engine
	for _, name := range []string{"rings", "random", "rings", "empty", "symmetric", "rings"} {
		pr := prs[name]
		n := 3 + len(name)%4
		ls := make([]lanes.Lane, n)
		for i := range ls {
			ls[i] = lanes.Lane{Params: loggp.MeikoCS2(pr.P), Seed: int64(i + 1)}
		}
		reused, err := eng.Run(pr, lanes.Config{Cost: model}, ls)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fresh, err := lanes.Run(pr, lanes.Config{Cost: model}, ls)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for l := range ls {
			if reused[l] != fresh[l] {
				t.Fatalf("%s lane %d: reused engine diverges: %+v vs %+v", name, l, reused[l], fresh[l])
			}
		}
	}
}

// TestLaneIsolation checks that a lane rejected at configuration time
// (bad parameters, machine too small) fails alone.
func TestLaneIsolation(t *testing.T) {
	pr := build(4, trace.Ring(4, 128))
	ls := []lanes.Lane{
		{Params: loggp.MeikoCS2(4), Seed: 1},
		{Params: loggp.Params{L: -5, O: 1, Gap: 1, P: 4}, Seed: 1},
		{Params: loggp.MeikoCS2(2), Seed: 1},
		{Params: loggp.MeikoCS2(4), Seed: 1},
	}
	results, err := lanes.Run(pr, lanes.Config{Cost: cost.DefaultAnalytic()}, ls)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatalf("invalid lanes accepted: %+v", results)
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("valid lanes poisoned by invalid neighbours: %+v", results)
	}
	if results[0] != results[3] {
		t.Fatalf("identical lanes disagree: %+v vs %+v", results[0], results[3])
	}
}

// TestRunRejectsBadInput covers the shared-input errors.
func TestRunRejectsBadInput(t *testing.T) {
	pr := build(2, trace.New(2).Add(0, 1, 64))
	if _, err := lanes.Run(pr, lanes.Config{}, []lanes.Lane{{Params: loggp.MeikoCS2(2)}}); err == nil {
		t.Fatal("nil cost model accepted")
	}
	if _, err := lanes.Run(pr, lanes.Config{Cost: cost.DefaultAnalytic()}, nil); err == nil {
		t.Fatal("empty lane set accepted")
	}
}

// TestContextCancellation checks the lane-step deadline granularity: a
// pre-cancelled context aborts the whole run with the context's error.
func TestContextCancellation(t *testing.T) {
	pr := build(4, trace.Ring(4, 128), trace.Ring(4, 128))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := lanes.Run(pr, lanes.Config{Cost: cost.DefaultAnalytic(), Ctx: ctx},
		[]lanes.Lane{{Params: loggp.MeikoCS2(4), Seed: 1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestLostLanePreservesLossError pins the error contract: a lost lane's
// error chain must expose the *faults.LossError so callers can separate
// losses from internal failures, as robust does.
func TestLostLanePreservesLossError(t *testing.T) {
	pr := build(4, trace.AllToAll(4, 256), trace.AllToAll(4, 256))
	ls := []lanes.Lane{{
		Params: loggp.MeikoCS2(4),
		Seed:   2,
		Faults: faults.Plan{Seed: 1, Drop: faults.Drop{Prob: 0.95, MaxRetries: 1}},
	}}
	results, err := lanes.Run(pr, lanes.Config{Cost: cost.DefaultAnalytic()}, ls)
	if err != nil {
		t.Fatal(err)
	}
	var le *faults.LossError
	if results[0].Err == nil || !errors.As(results[0].Err, &le) {
		t.Fatalf("lost lane error %v does not expose *faults.LossError", results[0].Err)
	}
	if fmt.Sprint(le) == "" {
		t.Fatal("empty loss error")
	}
}
