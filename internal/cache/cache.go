// Package cache provides the per-processor cache model of the machine
// emulator. The paper's measured running times diverge from its LogGP
// prediction at small block sizes because of cache effects, which the
// authors isolate by timing a "bring the blocks into the cache" section
// separately; the emulator reproduces that mechanism with this model.
//
// The model is an LRU cache over variable-size objects (basic blocks and
// received message buffers) with a byte capacity — block granularity
// rather than line granularity, matching how the blocked algorithms
// touch memory.
package cache

import (
	"container/list"
	"fmt"
)

// Cache is a byte-capacity LRU over variable-size objects.
type Cache struct {
	capacity int
	used     int
	order    *list.List // front = most recently used; values are *entry
	index    map[uint64]*list.Element

	// Stats accumulate across accesses until Reset.
	Stats Stats
}

// Stats counts cache events.
type Stats struct {
	Hits        int
	Misses      int
	Evictions   int
	MissedBytes int
}

type entry struct {
	id    uint64
	bytes int
}

// New returns a cache holding at most capacity bytes. A zero or negative
// capacity yields a cache that misses on every access (the no-cache
// degenerate case).
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[uint64]*list.Element),
	}
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Used returns the bytes currently resident.
func (c *Cache) Used() int { return c.used }

// Len returns the number of resident objects.
func (c *Cache) Len() int { return c.order.Len() }

// Contains reports whether the object is resident, without touching LRU
// order or statistics.
func (c *Cache) Contains(id uint64) bool {
	_, ok := c.index[id]
	return ok
}

// Access touches the object, returning true on a hit. On a miss the
// object is loaded, evicting least-recently-used objects as needed; an
// object larger than the whole capacity is counted as a miss and not
// retained. Re-accessing a resident object with a different size is
// treated as a miss of the new size (the old copy is dropped).
func (c *Cache) Access(id uint64, bytes int) bool {
	if bytes < 0 {
		panic(fmt.Sprintf("cache: negative object size %d", bytes))
	}
	if el, ok := c.index[id]; ok {
		if el.Value.(*entry).bytes == bytes {
			c.order.MoveToFront(el)
			c.Stats.Hits++
			return true
		}
		c.evictElement(el)
	}
	c.Stats.Misses++
	c.Stats.MissedBytes += bytes
	if bytes > c.capacity {
		return false
	}
	for c.used+bytes > c.capacity {
		c.evictElement(c.order.Back())
	}
	c.index[id] = c.order.PushFront(&entry{id: id, bytes: bytes})
	c.used += bytes
	return false
}

func (c *Cache) evictElement(el *list.Element) {
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.index, e.id)
	c.used -= e.bytes
	c.Stats.Evictions++
}

// Reset empties the cache and clears statistics.
func (c *Cache) Reset() {
	c.order.Init()
	c.index = make(map[uint64]*list.Element)
	c.used = 0
	c.Stats = Stats{}
}
