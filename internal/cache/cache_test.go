package cache

import (
	"testing"
	"testing/quick"
)

func TestHitAfterMiss(t *testing.T) {
	c := New(100)
	if c.Access(1, 40) {
		t.Fatal("first access hit")
	}
	if !c.Access(1, 40) {
		t.Fatal("second access missed")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || c.Stats.MissedBytes != 40 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(100)
	c.Access(1, 40)
	c.Access(2, 40)
	c.Access(3, 40) // evicts 1 (LRU)
	if c.Contains(1) {
		t.Fatal("LRU object not evicted")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Fatal("recently used objects evicted")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestAccessRefreshesLRUOrder(t *testing.T) {
	c := New(100)
	c.Access(1, 40)
	c.Access(2, 40)
	c.Access(1, 40) // refresh 1; 2 becomes LRU
	c.Access(3, 40) // evicts 2
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("LRU order not refreshed by access")
	}
}

func TestOversizeObjectNotRetained(t *testing.T) {
	c := New(100)
	c.Access(9, 50)
	if c.Access(1, 200) {
		t.Fatal("oversize object hit")
	}
	if c.Contains(1) {
		t.Fatal("oversize object retained")
	}
	if !c.Contains(9) {
		t.Fatal("oversize miss evicted resident objects needlessly")
	}
	if c.Access(1, 200) {
		t.Fatal("oversize object hit on repeat")
	}
}

func TestZeroCapacityAlwaysMisses(t *testing.T) {
	c := New(0)
	for i := 0; i < 3; i++ {
		if c.Access(1, 10) {
			t.Fatal("zero-capacity cache hit")
		}
	}
	if c.Stats.Misses != 3 || c.Used() != 0 {
		t.Fatalf("stats = %+v used = %d", c.Stats, c.Used())
	}
}

func TestResizeOnSizeChange(t *testing.T) {
	c := New(100)
	c.Access(1, 40)
	if c.Access(1, 60) {
		t.Fatal("size change treated as hit")
	}
	if c.Used() != 60 || c.Len() != 1 {
		t.Fatalf("used = %d len = %d after resize", c.Used(), c.Len())
	}
	if !c.Access(1, 60) {
		t.Fatal("resized object not resident")
	}
}

func TestReset(t *testing.T) {
	c := New(100)
	c.Access(1, 40)
	c.Reset()
	if c.Used() != 0 || c.Len() != 0 || c.Stats.Misses != 0 || c.Contains(1) {
		t.Fatal("Reset incomplete")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	New(10).Access(1, -1)
}

// Property: used bytes never exceed capacity and always equal the sum of
// resident object sizes.
func TestCapacityInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(512)
		for _, op := range ops {
			id := uint64(op % 32)
			size := int(op%97) + 1
			c.Access(id, size)
			if c.Used() > c.Capacity() || c.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a working set that fits in capacity never misses after the
// first pass, regardless of access order repetition.
func TestFittingWorkingSetStopsMissing(t *testing.T) {
	c := New(1000)
	ids := []uint64{1, 2, 3, 4, 5}
	for _, id := range ids {
		c.Access(id, 100)
	}
	c.Stats = Stats{}
	for round := 0; round < 10; round++ {
		for _, id := range ids {
			c.Access(id, 100)
		}
	}
	if c.Stats.Misses != 0 {
		t.Fatalf("fitting working set missed %d times", c.Stats.Misses)
	}
}

// Property: cyclically sweeping a working set larger than capacity with
// LRU misses every time (the emulator's capacity-miss regime).
func TestThrashingWorkingSetAlwaysMisses(t *testing.T) {
	c := New(300)
	for round := 0; round < 5; round++ {
		for id := uint64(0); id < 4; id++ {
			if c.Access(id, 100) {
				t.Fatalf("round %d id %d hit; LRU must thrash", round, id)
			}
		}
	}
}
