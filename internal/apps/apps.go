// Package apps names the bundled applications so that command-line
// tools and the scaling analyses can build any of them uniformly: the
// blocked Gaussian elimination, Cannon's matrix multiplication, the
// blocked triangular solve and the Jacobi stencil.
package apps

import (
	"fmt"
	"math"

	"loggpsim/internal/cannon"
	"loggpsim/internal/ge"
	"loggpsim/internal/layout"
	"loggpsim/internal/program"
	"loggpsim/internal/stencil"
	"loggpsim/internal/trisolve"
)

// Spec sizes one application instance.
type Spec struct {
	// N is the problem size (matrix/system/domain side).
	N int
	// B is the block size (ignored by cannon, whose blocks are N/√P).
	B int
	// Procs is the processor count.
	Procs int
	// Iters is the sweep count (stencil only).
	Iters int
}

// Names lists the recognized application names.
func Names() []string { return []string{"ge", "cannon", "trisolve", "stencil"} }

// GridShape factors p into the most square r×c processor grid (r ≤ c).
func GridShape(p int) (r, c int) {
	r = int(math.Sqrt(float64(p)))
	for r > 1 && p%r != 0 {
		r--
	}
	if r < 1 {
		r = 1
	}
	return r, p / r
}

// Build returns the named application's program under its default
// layout: diagonal for ge, the √P×√P grid for cannon, row-cyclic for
// trisolve, and the most square 2-D block-cyclic grid for stencil.
func Build(name string, s Spec) (*program.Program, error) {
	if s.Procs <= 0 {
		return nil, fmt.Errorf("apps: invalid processor count %d", s.Procs)
	}
	switch name {
	case "ge":
		g, err := ge.NewGrid(s.N, s.B)
		if err != nil {
			return nil, err
		}
		return ge.BuildProgram(g, layout.Diagonal(s.Procs, g.NB))
	case "cannon":
		q := int(math.Sqrt(float64(s.Procs)))
		if q*q != s.Procs {
			return nil, fmt.Errorf("apps: cannon needs a square processor count, got %d", s.Procs)
		}
		c, err := cannon.NewConfig(s.N, q)
		if err != nil {
			return nil, err
		}
		return c.BuildProgram(), nil
	case "trisolve":
		g, err := trisolve.NewGrid(s.N, s.B)
		if err != nil {
			return nil, err
		}
		return trisolve.BuildProgram(g, layout.RowCyclic(s.Procs))
	case "stencil":
		g, err := stencil.NewGrid(s.N, s.B)
		if err != nil {
			return nil, err
		}
		iters := s.Iters
		if iters <= 0 {
			iters = 10
		}
		r, c := GridShape(s.Procs)
		return stencil.BuildProgram(g, iters, layout.BlockCyclic2D(r, c))
	default:
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
}
