package apps

import (
	"testing"

	"loggpsim/internal/cost"
	"loggpsim/internal/loggp"
	"loggpsim/internal/predictor"
)

func TestGridShape(t *testing.T) {
	tests := []struct{ p, r, c int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4},
		{9, 3, 3}, {12, 3, 4}, {7, 1, 7}, {16, 4, 4},
	}
	for _, tt := range tests {
		r, c := GridShape(tt.p)
		if r != tt.r || c != tt.c {
			t.Errorf("GridShape(%d) = %d×%d, want %d×%d", tt.p, r, c, tt.r, tt.c)
		}
		if r*c != tt.p {
			t.Errorf("GridShape(%d) does not cover all processors", tt.p)
		}
	}
}

func TestBuildAllApps(t *testing.T) {
	specs := map[string]Spec{
		"ge":       {N: 96, B: 12, Procs: 8},
		"cannon":   {N: 96, Procs: 16},
		"trisolve": {N: 96, B: 12, Procs: 8},
		"stencil":  {N: 96, B: 12, Procs: 8, Iters: 5},
	}
	for _, name := range Names() {
		pr, err := Build(name, specs[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := pr.Validate(); err != nil {
			t.Fatalf("%s: invalid program: %v", name, err)
		}
		p, err := predictor.Predict(pr, predictor.Config{
			Params: loggp.MeikoCS2(pr.P), Cost: cost.DefaultAnalytic(), Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Total <= 0 {
			t.Fatalf("%s: prediction %+v", name, p)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("nope", Spec{N: 96, B: 12, Procs: 8}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Build("ge", Spec{N: 96, B: 7, Procs: 8}); err == nil {
		t.Error("non-dividing block accepted")
	}
	if _, err := Build("cannon", Spec{N: 96, Procs: 8}); err == nil {
		t.Error("non-square cannon processor count accepted")
	}
	if _, err := Build("ge", Spec{N: 96, B: 12, Procs: 0}); err == nil {
		t.Error("zero processors accepted")
	}
}

func TestStencilDefaultIters(t *testing.T) {
	pr, err := Build("stencil", Spec{N: 32, B: 8, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 10 default iterations + initial exchange.
	if len(pr.Steps) != 11 {
		t.Fatalf("steps = %d, want 11", len(pr.Steps))
	}
}
