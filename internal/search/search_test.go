package search

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var sizes = []int{8, 10, 12, 16, 20, 24, 30, 32, 40, 48, 60, 80, 96, 120}

// convex is unimodal with minimum at 40.
func convex(b int) (float64, error) {
	return math.Pow(float64(b)-40, 2) + 5, nil
}

// sawtooth has a global minimum at 30 and a decoy local minimum at 96.
func sawtooth(b int) (float64, error) {
	base := map[int]float64{
		8: 90, 10: 80, 12: 70, 16: 55, 20: 40, 24: 25, 30: 10, 32: 30,
		40: 50, 48: 45, 60: 60, 80: 55, 96: 20, 120: 65,
	}
	return base[b], nil
}

func TestSweepFindsGlobalMin(t *testing.T) {
	r, err := Sweep(sizes, sawtooth)
	if err != nil {
		t.Fatal(err)
	}
	if r.Best != 30 || r.Value != 10 {
		t.Fatalf("Sweep = %+v, want best 30", r)
	}
	if r.Evaluations != len(sizes) {
		t.Fatalf("Sweep evaluations = %d, want %d", r.Evaluations, len(sizes))
	}
}

func TestTernaryOnUnimodal(t *testing.T) {
	r, err := Ternary(sizes, convex)
	if err != nil {
		t.Fatal(err)
	}
	if r.Best != 40 {
		t.Fatalf("Ternary best = %d, want 40", r.Best)
	}
	if r.Evaluations >= len(sizes) {
		t.Fatalf("Ternary used %d evaluations, no better than sweep", r.Evaluations)
	}
}

func TestHillClimbOnUnimodal(t *testing.T) {
	for _, start := range []int{0, len(sizes) / 2, len(sizes) - 1} {
		r, err := HillClimb(sizes, convex, start)
		if err != nil {
			t.Fatal(err)
		}
		if r.Best != 40 {
			t.Fatalf("HillClimb from %d: best = %d, want 40", start, r.Best)
		}
	}
}

func TestHillClimbFindsLocalBasin(t *testing.T) {
	// Starting at index of 80 (decoy basin), the climb must land on the
	// local optimum 96, not the global 30.
	r, err := HillClimb(sizes, sawtooth, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.Best != 96 {
		t.Fatalf("HillClimb in decoy basin: best = %d, want 96", r.Best)
	}
}

func TestMemoizedAvoidsReevaluation(t *testing.T) {
	calls := 0
	f := func(b int) (float64, error) {
		calls++
		return float64(b), nil
	}
	mf, count := Memoized(f)
	for i := 0; i < 5; i++ {
		if _, err := mf(8); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 || *count != 1 {
		t.Fatalf("calls = %d count = %d, want 1,1", calls, *count)
	}
}

func TestErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	bad := func(int) (float64, error) { return 0, boom }
	if _, err := Sweep(sizes, bad); !errors.Is(err, boom) {
		t.Errorf("Sweep error = %v", err)
	}
	if _, err := Ternary(sizes, bad); !errors.Is(err, boom) {
		t.Errorf("Ternary error = %v", err)
	}
	if _, err := HillClimb(sizes, bad, 0); !errors.Is(err, boom) {
		t.Errorf("HillClimb error = %v", err)
	}
}

func TestEmptyAndBadInputs(t *testing.T) {
	if _, err := Sweep(nil, convex); !errors.Is(err, ErrNoCandidates) {
		t.Error("empty Sweep accepted")
	}
	if _, err := Ternary(nil, convex); !errors.Is(err, ErrNoCandidates) {
		t.Error("empty Ternary accepted")
	}
	if _, err := HillClimb(nil, convex, 0); !errors.Is(err, ErrNoCandidates) {
		t.Error("empty HillClimb accepted")
	}
	if _, err := HillClimb(sizes, convex, 99); err == nil {
		t.Error("out-of-range start accepted")
	}
}

func TestSingleCandidate(t *testing.T) {
	for name, fn := range map[string]func() (Result, error){
		"sweep":   func() (Result, error) { return Sweep([]int{16}, convex) },
		"ternary": func() (Result, error) { return Ternary([]int{16}, convex) },
		"climb":   func() (Result, error) { return HillClimb([]int{16}, convex, 0) },
	} {
		r, err := fn()
		if err != nil || r.Best != 16 {
			t.Errorf("%s: %+v, %v", name, r, err)
		}
	}
}

func TestArgmin(t *testing.T) {
	vals := []float64{3, 1, 2}
	i, v, err := Argmin(len(vals), func(i int) (float64, error) { return vals[i], nil })
	if err != nil || i != 1 || v != 1 {
		t.Fatalf("Argmin = %d,%g,%v", i, v, err)
	}
	if _, _, err := Argmin(0, nil); !errors.Is(err, ErrNoCandidates) {
		t.Error("empty Argmin accepted")
	}
	boom := errors.New("x")
	if _, _, err := Argmin(2, func(int) (float64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Error("Argmin error not propagated")
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	// Deterministic-equivalence: the parallel sweep must return exactly
	// the serial result (same best, same value bit-for-bit, same
	// evaluation count) at every worker count — including on a curve with
	// a tied minimum, where input order decides the winner.
	tied := func(b int) (float64, error) {
		if b == 24 || b == 60 {
			return 1.0, nil
		}
		return convex(b)
	}
	for _, f := range []Objective{convex, sawtooth, tied} {
		want, err := Sweep(sizes, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := SweepParallel(sizes, f, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("workers=%d: %+v, want serial %+v", workers, got, want)
			}
		}
	}
}

func TestSweepParallelDedupsDuplicates(t *testing.T) {
	var calls atomic.Int64
	f := func(b int) (float64, error) {
		calls.Add(1)
		return float64(b), nil
	}
	dup := []int{8, 8, 16, 8, 16, 24}
	r, err := SweepParallel(dup, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Best != 8 || r.Evaluations != 3 {
		t.Fatalf("got %+v, want best 8 with 3 evaluations", r)
	}
	if calls.Load() != 3 {
		t.Fatalf("objective ran %d times, want 3 (in-flight dedup)", calls.Load())
	}
}

func TestMemoizedConcurrentSingleEvaluation(t *testing.T) {
	// Many goroutines probing the same block size simultaneously must run
	// the objective exactly once; a slow first evaluation forces the rest
	// to actually wait on the in-flight call.
	var calls atomic.Int64
	gate := make(chan struct{})
	f := func(b int) (float64, error) {
		calls.Add(1)
		<-gate
		return float64(b * b), nil
	}
	mf, count := Memoized(f)
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]float64, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := mf(7)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach the cache before releasing the single
	// in-flight evaluation.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if calls.Load() != 1 || *count != 1 {
		t.Fatalf("objective ran %d times (count %d), want 1", calls.Load(), *count)
	}
	for i, v := range results {
		if v != 49 {
			t.Fatalf("goroutine %d got %g, want 49", i, v)
		}
	}
}

func TestMemoizedErrorNotCachedButShared(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	f := func(b int) (float64, error) {
		if calls.Add(1) == 1 {
			return 0, boom
		}
		return float64(b), nil
	}
	mf, count := Memoized(f)
	if _, err := mf(5); !errors.Is(err, boom) {
		t.Fatalf("first call error = %v", err)
	}
	// The failure must not be cached: the retry re-runs the objective.
	v, err := mf(5)
	if err != nil || v != 5 {
		t.Fatalf("retry = (%g, %v), want (5, nil)", v, err)
	}
	if calls.Load() != 2 || *count != 1 {
		t.Fatalf("calls = %d count = %d, want 2 calls and 1 success", calls.Load(), *count)
	}
}
