// Package search implements the paper's proposed future work: finding
// the optimal block size (and layout) automatically from the predicted
// running times. The paper notes this "reduces to a search problem and
// therefore some heuristics have to be used"; the package provides the
// exhaustive sweep plus two cheaper heuristics — a discrete ternary
// search exploiting the roughly unimodal shape of the time-versus-block-
// size curve, and a local hill climb for sawtooth-shaped curves where
// unimodality only holds approximately. The exhaustive sweep can fan out
// over a worker pool (SweepParallel) with results identical to the
// serial loop; the heuristics are inherently sequential but share the
// concurrency-safe memoization, so a heuristic and a sweep may probe one
// objective from concurrent goroutines.
package search

import (
	"errors"
	"fmt"
	"sync"

	"loggpsim/internal/flight"
	"loggpsim/internal/sweep"
)

// Objective evaluates one candidate block size, returning the predicted
// running time in microseconds. Evaluations are expensive (a full
// program generation plus simulation), so the heuristics minimize them.
type Objective func(blockSize int) (float64, error)

// Result reports a finished search.
type Result struct {
	// Best is the block size with the smallest observed objective.
	Best int
	// Value is the objective at Best.
	Value float64
	// Evaluations counts objective calls (after memoization, distinct
	// block sizes evaluated).
	Evaluations int
}

// ErrNoCandidates is returned when the candidate list is empty.
var ErrNoCandidates = errors.New("search: no candidate block sizes")

// Memoized wraps an objective with a cache so repeated probes of the
// same block size cost nothing; the returned counter reports distinct
// evaluations. The wrapper is safe for concurrent use: simultaneous
// probes of the same block size run the underlying objective once
// (coalesced through a flight.Group, the repository's shared
// singleflight core), the late arrivals blocking until the in-flight
// evaluation finishes and then sharing its result. A failed evaluation
// is not cached (matching the serial behaviour), so a later probe
// retries; its error is still delivered to every goroutine that was
// waiting on it. Read the counter only after all evaluations have
// completed.
func Memoized(f Objective) (Objective, *int) {
	var g flight.Group[int, float64]
	var mu sync.Mutex
	vals := map[int]float64{}
	count := new(int)
	return func(b int) (float64, error) {
		mu.Lock()
		v, ok := vals[b]
		mu.Unlock()
		if ok {
			return v, nil
		}
		v, err, _ := g.Do(b, func() (float64, error) {
			// A just-finished flight may have stored the value between
			// this probe's memo miss and its winning leadership; only
			// the leader looks, so the objective still runs at most
			// once per successful block size.
			mu.Lock()
			v, ok := vals[b]
			mu.Unlock()
			if ok {
				return v, nil
			}
			v, err := f(b)
			if err == nil {
				mu.Lock()
				vals[b] = v
				*count++
				mu.Unlock()
			}
			return v, err
		})
		if err != nil {
			return 0, err
		}
		return v, nil
	}, count
}

// Sweep evaluates every candidate and returns the global minimum — the
// paper's baseline strategy. It is SweepParallel with one worker.
func Sweep(sizes []int, f Objective) (Result, error) {
	return SweepParallel(sizes, f, 1)
}

// SweepParallel is Sweep fanned out over a worker pool (workers < 1
// selects runtime.GOMAXPROCS(0)). The objective must be safe for
// concurrent use when more than one worker is configured; duplicate
// candidates are deduplicated by the memoizing wrapper, so each distinct
// block size is evaluated once. The result is identical to the serial
// Sweep at every worker count: values are collected in input order and
// the minimum scan runs serially, so ties resolve to the earliest
// candidate exactly as in the serial loop.
func SweepParallel(sizes []int, f Objective, workers int) (Result, error) {
	if len(sizes) == 0 {
		return Result{}, ErrNoCandidates
	}
	mf, count := Memoized(f)
	vals, err := sweep.Map(sizes, func(i, b int) (float64, error) {
		v, err := mf(b)
		if err != nil {
			return 0, fmt.Errorf("search: evaluating block size %d: %w", b, err)
		}
		return v, nil
	}, sweep.Workers(workers))
	if err != nil {
		return Result{}, err
	}
	best := Result{Best: -1}
	for i, v := range vals {
		if best.Best < 0 || v < best.Value {
			best.Best, best.Value = sizes[i], v
		}
	}
	best.Evaluations = *count
	return best, nil
}

// Ternary performs a discrete ternary search over the candidate list,
// assuming the objective is unimodal in the list order. It needs
// O(log n) evaluations; on non-unimodal (sawtooth) curves it returns a
// good local optimum rather than the global one.
func Ternary(sizes []int, f Objective) (Result, error) {
	if len(sizes) == 0 {
		return Result{}, ErrNoCandidates
	}
	mf, count := Memoized(f)
	lo, hi := 0, len(sizes)-1
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		v1, err := mf(sizes[m1])
		if err != nil {
			return Result{}, err
		}
		v2, err := mf(sizes[m2])
		if err != nil {
			return Result{}, err
		}
		if v1 < v2 {
			hi = m2 - 1
		} else {
			lo = m1 + 1
		}
	}
	best := Result{Best: -1}
	for i := lo; i <= hi; i++ {
		v, err := mf(sizes[i])
		if err != nil {
			return Result{}, err
		}
		if best.Best < 0 || v < best.Value {
			best.Best, best.Value = sizes[i], v
		}
	}
	best.Evaluations = *count
	return best, nil
}

// HillClimb walks from the candidate at startIdx to a local minimum in
// list order, probing immediate neighbours until neither improves. On a
// unimodal curve it finds the global optimum; on a sawtooth it finds the
// local optimum of the starting basin.
func HillClimb(sizes []int, f Objective, startIdx int) (Result, error) {
	if len(sizes) == 0 {
		return Result{}, ErrNoCandidates
	}
	if startIdx < 0 || startIdx >= len(sizes) {
		return Result{}, fmt.Errorf("search: start index %d outside [0,%d)", startIdx, len(sizes))
	}
	mf, count := Memoized(f)
	cur := startIdx
	curVal, err := mf(sizes[cur])
	if err != nil {
		return Result{}, err
	}
	for {
		bestN, bestV := -1, curVal
		for _, n := range []int{cur - 1, cur + 1} {
			if n < 0 || n >= len(sizes) {
				continue
			}
			v, err := mf(sizes[n])
			if err != nil {
				return Result{}, err
			}
			if v < bestV {
				bestN, bestV = n, v
			}
		}
		if bestN < 0 {
			return Result{Best: sizes[cur], Value: curVal, Evaluations: *count}, nil
		}
		cur, curVal = bestN, bestV
	}
}

// Argmin evaluates n alternatives by index (e.g. candidate layouts) and
// returns the index with the smallest value.
func Argmin(n int, eval func(i int) (float64, error)) (int, float64, error) {
	if n <= 0 {
		return 0, 0, ErrNoCandidates
	}
	bestI, bestV := -1, 0.0
	for i := 0; i < n; i++ {
		v, err := eval(i)
		if err != nil {
			return 0, 0, err
		}
		if bestI < 0 || v < bestV {
			bestI, bestV = i, v
		}
	}
	return bestI, bestV, nil
}
