package machine

import (
	"math"
	"testing"

	"loggpsim/internal/blockops"
	"loggpsim/internal/cannon"
	"loggpsim/internal/cost"
	"loggpsim/internal/ge"
	"loggpsim/internal/layout"
	"loggpsim/internal/loggp"
	"loggpsim/internal/network"
	"loggpsim/internal/predictor"
	"loggpsim/internal/program"
	"loggpsim/internal/stencil"
	"loggpsim/internal/trisolve"
)

var (
	meiko = loggp.MeikoCS2(8)
	model = cost.DefaultAnalytic()
)

// bareConfig disables every emulator effect, leaving pure LogGP.
func bareConfig() Config {
	return Config{Params: meiko, Cost: model}
}

func geProgram(t *testing.T, n, b int, lay layout.Layout) *program.Program {
	t.Helper()
	g, err := ge.NewGrid(n, b)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ge.BuildProgram(g, lay)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// With every knob zeroed the emulator must agree exactly with the
// standard LogGP prediction — the emulator is the prediction plus the
// four reality effects and nothing else.
func TestBareEmulatorEqualsPrediction(t *testing.T) {
	for _, b := range []int{8, 12, 24} {
		const n = 96
		pr := geProgram(t, n, b, layout.Diagonal(8, n/b))
		em, err := Run(pr, bareConfig())
		if err != nil {
			t.Fatal(err)
		}
		pred, err := predictor.Predict(pr, predictor.Config{Params: meiko, Cost: model})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(em.Total-pred.Total) > 1e-6 {
			t.Errorf("b=%d: bare emulator %g != prediction %g", b, em.Total, pred.Total)
		}
		if math.Abs(em.TotalNoCache-em.Total) > 1e-6 {
			t.Errorf("b=%d: no-cache total %g != total %g without cache model",
				b, em.TotalNoCache, em.Total)
		}
		if math.Abs(em.Comp-pred.Comp) > 1e-6 {
			t.Errorf("b=%d: bare emulator comp %g != predicted %g", b, em.Comp, pred.Comp)
		}
		if em.CacheWarm != 0 || em.Misses != 0 {
			t.Errorf("b=%d: bare emulator warmed the cache: %+v", b, em)
		}
	}
}

func TestCacheChargesRaiseTotal(t *testing.T) {
	pr := geProgram(t, 96, 8, layout.Diagonal(8, 12))
	cfg := bareConfig()
	cfg.CacheBytes = 1 << 20
	cfg.MissFixed = 0.5
	cfg.MissPerByte = 0.005
	em, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if em.Misses == 0 || em.CacheWarm <= 0 {
		t.Fatalf("no cache activity: %+v", em)
	}
	if em.Total <= em.TotalNoCache {
		t.Fatalf("warm charges did not raise total: %g vs %g", em.Total, em.TotalNoCache)
	}
	bare, err := Run(pr, bareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if em.Total <= bare.Total {
		t.Fatalf("cache model did not slow the machine: %g vs %g", em.Total, bare.Total)
	}
}

func TestCacheWarmLargerForSmallBlocks(t *testing.T) {
	// The paper's central cache observation: the relative cache penalty
	// is big for small blocks and fades for large ones, because every
	// wave moves many more (and colder) buffers.
	relWarm := func(b int) float64 {
		const n = 96
		pr := geProgram(t, n, b, layout.Diagonal(8, n/b))
		cfg := bareConfig()
		cfg.CacheBytes = 1 << 20
		cfg.MissFixed = 0.5
		cfg.MissPerByte = 0.005
		em, err := Run(pr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return em.CacheWarm / em.Total
	}
	small, large := relWarm(8), relWarm(48)
	if small <= large {
		t.Fatalf("relative cache warm at b=8 (%g) not above b=48 (%g)", small, large)
	}
}

func TestIterationOverheadExact(t *testing.T) {
	// One idle step: the iteration overhead is the only computation.
	pr := program.New(2)
	pr.AddStep()
	pr.AddStep()
	cfg := bareConfig()
	cfg.IterPerBlock = 0.5
	cfg.AssignedBlocks = []int{10, 4}
	em, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Proc 0: 2 steps × 10 blocks × 0.5µs.
	if math.Abs(em.Comp-10) > 1e-9 {
		t.Fatalf("Comp = %g, want 10", em.Comp)
	}
	if math.Abs(em.Total-10) > 1e-9 {
		t.Fatalf("Total = %g, want 10", em.Total)
	}
}

func TestLocalTransfersCharged(t *testing.T) {
	pr := program.New(2)
	s := pr.AddStep()
	s.Comm.AddLocal(0, 1000) // intentional local transfer
	cfg := bareConfig()
	cfg.LocalFixed = 2
	cfg.LocalPerByte = 0.01
	em, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + 0.01*1000
	if math.Abs(em.Total-want) > 1e-9 || math.Abs(em.Comm-want) > 1e-9 {
		t.Fatalf("local transfer: Total=%g Comm=%g, want %g", em.Total, em.Comm, want)
	}
}

func TestJitterSlowsAndIsDeterministic(t *testing.T) {
	pr := geProgram(t, 96, 12, layout.Diagonal(8, 8))
	cfg := bareConfig()
	cfg.JitterFrac = 0.5
	cfg.Seed = 7
	a, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.Comm != b.Comm {
		t.Fatal("same seed, different jittered runs")
	}
	bare, err := Run(pr, bareConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Jitter perturbs the schedule; note it need not slow it down —
	// delaying one arrival can let a send win the receive-priority race
	// and shorten the pipeline (the paper's own caveat that one late
	// message "can completely change" the sequence). It must stay near
	// the unjittered run, though.
	if rel := math.Abs(a.Total-bare.Total) / bare.Total; rel > 0.10 {
		t.Fatalf("jittered total %g deviates %.1f%% from unjittered %g",
			a.Total, 100*rel, bare.Total)
	}
}

func TestMeasuredBetweenStandardAndWorstCase(t *testing.T) {
	// The paper's Figure 8: the measured communication time falls
	// between the standard and worst-case simulated values. The
	// emulator's communication exceeds the standard prediction (local
	// copies + jitter) while staying near it.
	const n, b = 96, 12
	pr := geProgram(t, n, b, layout.Diagonal(8, n/b))
	cfg := Default(meiko, model)
	cfg.Seed = 3
	em, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := predictor.Predict(pr, predictor.Config{Params: meiko, Cost: model, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if em.Comm < pred.Comm {
		t.Errorf("measured comm %g below standard prediction %g", em.Comm, pred.Comm)
	}
}

func TestErrors(t *testing.T) {
	pr := program.New(2)
	pr.AddStep()
	if _, err := Run(pr, Config{Params: meiko}); err == nil {
		t.Error("nil cost model accepted")
	}
	cfg := bareConfig()
	cfg.AssignedBlocks = []int{1, 2, 3}
	if _, err := Run(pr, cfg); err == nil {
		t.Error("wrong AssignedBlocks length accepted")
	}
	bad := program.New(2)
	bad.AddStep().AddOp(0, blockops.NumOps, 8)
	if _, err := Run(bad, bareConfig()); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	pr := geProgram(t, 96, 12, layout.RowCyclic(8))
	cfg := Default(meiko, model)
	cfg.Seed = 11
	cfg.AssignedBlocks = layout.BlockCounts(layout.RowCyclic(8), 8)
	a, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

// The emulator must handle every bundled application's program,
// including the variable-message-size ones.
func TestEmulatorAcrossApplications(t *testing.T) {
	cfg := Default(meiko, model)
	cfg.Seed = 2
	for _, tc := range []struct {
		name  string
		build func() (*program.Program, error)
	}{
		{"trisolve", func() (*program.Program, error) {
			g, err := trisolve.NewGrid(96, 8)
			if err != nil {
				return nil, err
			}
			return trisolve.BuildProgram(g, layout.RowCyclic(8))
		}},
		{"stencil", func() (*program.Program, error) {
			g, err := stencil.NewGrid(64, 8)
			if err != nil {
				return nil, err
			}
			return stencil.BuildProgram(g, 4, layout.BlockCyclic2D(2, 4))
		}},
		{"cannon", func() (*program.Program, error) {
			c, err := cannon.NewConfig(64, 2)
			if err != nil {
				return nil, err
			}
			pr := c.BuildProgram()
			return pr, nil
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pr, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			localCfg := cfg
			if pr.P != meiko.P {
				localCfg.Params = loggp.MeikoCS2(pr.P)
			}
			m, err := Run(pr, localCfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Total <= 0 || m.Total < m.TotalNoCache-1e-9 {
				t.Fatalf("emulation inconsistent: %+v", m)
			}
			pred, err := predictor.Predict(pr, predictor.Config{
				Params: localCfg.Params, Cost: model, Seed: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.Total < pred.Total-1e-6 {
				t.Fatalf("emulated %g below plain prediction %g", m.Total, pred.Total)
			}
		})
	}
}

func TestEmulatorWithNetworkFabric(t *testing.T) {
	pr := geProgram(t, 96, 12, layout.Diagonal(8, 8))
	flat, err := Run(pr, bareConfig())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := network.NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	fabric, err := network.NewFabric(topo, meiko.L/3, meiko.G)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bareConfig()
	cfg.Network = fabric
	contended, err := Run(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if contended.Total <= flat.Total {
		t.Fatalf("ring fabric (%g) not slower than flat network (%g)", contended.Total, flat.Total)
	}
	// The fabric is reset between the emulator's two internal passes, so
	// the no-cache pass sees the same network and the totals agree (no
	// cache model is enabled here).
	if math.Abs(contended.Total-contended.TotalNoCache) > 1e-6 {
		t.Fatalf("fabric state leaked across passes: %g vs %g",
			contended.Total, contended.TotalNoCache)
	}
}
