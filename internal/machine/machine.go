// Package machine is the repository's stand-in for the paper's Meiko
// CS-2 testbed: a deterministic discrete-event emulator that *executes*
// an oblivious block program in virtual time and produces the "measured"
// curves of Figures 7–9. It extends the pure LogGP prediction with
// exactly the four effects the paper identifies as the gap between its
// prediction and reality (Section 6.3):
//
//   - a per-processor cache model (package cache): operand blocks and
//     received message buffers must be loaded before use; misses cost
//     time that is accounted separately, like the paper's separately
//     timed "bring the blocks into the cache" section;
//   - the overhead of iterating through all the blocks a processor is
//     assigned, paid once per step (the paper's explanation for its
//     computation-time underestimation at small block sizes);
//   - local message transfers (self messages), which the LogGP
//     simulation skips but a real machine pays as memory copies;
//   - network variance: a seeded non-negative jitter on message arrival
//     times (the LogGP parameters are averages, not exact values).
//
// With all four knobs zeroed the emulator degenerates to the standard
// LogGP prediction, which the tests assert.
package machine

import (
	"fmt"
	"math/rand"

	"loggpsim/internal/cache"
	"loggpsim/internal/cost"
	"loggpsim/internal/loggp"
	"loggpsim/internal/program"
	"loggpsim/internal/sim"
)

// Config controls one emulated execution.
type Config struct {
	// Params is the LogGP description of the machine's network.
	Params loggp.Params
	// Cost prices the basic operations (the emulated machine's true
	// kernel speeds).
	Cost cost.Model
	// Seed drives jitter and simulator tie-breaks.
	Seed int64

	// CacheBytes is the per-processor cache capacity; zero disables the
	// cache model entirely.
	CacheBytes int
	// MissFixed and MissPerByte price one cache miss: fixed microseconds
	// plus microseconds per byte loaded.
	MissFixed   float64
	MissPerByte float64

	// IterPerBlock is the per-step overhead, in microseconds, a
	// processor pays per block it is assigned (scanning its block list
	// each step). AssignedBlocks gives the per-processor block counts;
	// nil disables the iteration overhead.
	IterPerBlock   float64
	AssignedBlocks []int

	// LocalFixed and LocalPerByte price a self message (local memory
	// copy).
	LocalFixed   float64
	LocalPerByte float64

	// JitterFrac scales the network jitter: each message's arrival is
	// delayed by a uniform random amount in [0, JitterFrac·L].
	JitterFrac float64

	// Network, when non-nil, routes messages over an explicit topology
	// fabric instead of the flat LogGP network (see sim.Config.Network).
	// The fabric is Reset before each of the emulator's two passes.
	Network interface {
		Arrival(src, dst, bytes int, inject float64) float64
		Reset()
	}
}

// Default returns the emulator configuration used by the experiments:
// a 1 MiB per-processor cache, 200 MB/s miss fill, 500 MB/s local
// copies, and ±25% latency jitter.
func Default(params loggp.Params, model cost.Model) Config {
	return Config{
		Params:       params,
		Cost:         model,
		CacheBytes:   1 << 20,
		MissFixed:    0.5,
		MissPerByte:  0.005,
		IterPerBlock: 0.05,
		LocalFixed:   1,
		LocalPerByte: 0.002,
		JitterFrac:   0.25,
	}
}

// Result reports one emulated execution.
type Result struct {
	// Total is the finishing time including cache-warming costs — the
	// paper's "measured with caching" curve.
	Total float64
	// TotalNoCache is the finishing time of the identical execution with
	// the cache-warming charges removed — the paper's "measured without
	// the extra caching section" curve.
	TotalNoCache float64
	// Comp is the maximum per-processor computation time: operation
	// costs plus iteration overhead (Figure 9's measured curve).
	Comp float64
	// Comm is the maximum per-processor time spent in communication
	// phases, including waiting and local copies (Figure 8's measured
	// curve).
	Comm float64
	// CacheWarm is the maximum per-processor time spent loading blocks
	// into the cache (the separately timed section).
	CacheWarm float64
	// Hits and Misses aggregate the cache statistics over all
	// processors.
	Hits, Misses int
}

// Run emulates the program twice — once with cache-warming charges, once
// without — and reports both finishing times plus the decomposition of
// the charged run.
func Run(pr *program.Program, cfg Config) (*Result, error) {
	if cfg.Cost == nil {
		return nil, fmt.Errorf("machine: no cost model")
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if cfg.AssignedBlocks != nil && len(cfg.AssignedBlocks) != pr.P {
		return nil, fmt.Errorf("machine: %d assigned-block counts for %d processors",
			len(cfg.AssignedBlocks), pr.P)
	}
	// One simulator session serves both passes: run re-aims it with
	// Reconfigure, so the second pass reuses the first one's scheduler
	// state and queue storage instead of rebuilding it.
	sess := &sim.Session{}
	charged, err := run(pr, cfg, true, sess)
	if err != nil {
		return nil, err
	}
	warm, err := run(pr, cfg, false, sess)
	if err != nil {
		return nil, err
	}
	charged.TotalNoCache = warm.Total
	return charged, nil
}

// run performs one emulated execution. chargeCache selects whether cache
// misses cost time (they are tracked either way).
func run(pr *program.Program, cfg Config, chargeCache bool, sess *sim.Session) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The emulator only reads clocks, so the replay runs in quiet mode
	// (no timeline recording; see sim.Config.NoTimeline).
	simCfg := sim.Config{Params: cfg.Params, Seed: cfg.Seed, NoTimeline: true}
	if cfg.JitterFrac > 0 {
		maxJitter := cfg.JitterFrac * cfg.Params.L
		simCfg.Jitter = func(int, int) float64 { return rng.Float64() * maxJitter }
	}
	if cfg.Network != nil {
		cfg.Network.Reset()
		simCfg.Network = cfg.Network
	}
	if err := sess.Reconfigure(pr.P, simCfg); err != nil {
		return nil, err
	}

	caches := make([]*cache.Cache, pr.P)
	for i := range caches {
		caches[i] = cache.New(cfg.CacheBytes)
	}
	res := &Result{}
	compT := make([]float64, pr.P)
	commT := make([]float64, pr.P)
	warmT := make([]float64, pr.P)
	// pendingBuffers holds, per processor, the byte sizes of message
	// buffers received in the previous communication phase; they are
	// pulled into the cache when the next computation phase touches
	// them.
	pendingBuffers := make([][]int, pr.P)
	nextBufferID := uint64(1) << 32 // distinct from block ids

	durs := make([]float64, pr.P)
	var before, after []float64 // clock scratch, reused across steps
	var stepRes sim.Result      // reused quiet-mode step result
	for stepIdx, step := range pr.Steps {
		// Computation phase: iteration overhead + cache warming +
		// operation costs.
		for proc := range durs {
			comp := 0.0
			if cfg.AssignedBlocks != nil {
				comp += cfg.IterPerBlock * float64(cfg.AssignedBlocks[proc])
			}
			warm := 0.0
			if cfg.CacheBytes > 0 {
				c := caches[proc]
				for _, bytes := range pendingBuffers[proc] {
					c.Access(nextBufferID, bytes)
					nextBufferID++
					warm += cfg.MissFixed + cfg.MissPerByte*float64(bytes)
				}
				pendingBuffers[proc] = pendingBuffers[proc][:0]
				for _, call := range step.Comp[proc] {
					bytes := 8 * call.BlockSize * call.BlockSize
					if !c.Access(call.Block, bytes) {
						warm += cfg.MissFixed + cfg.MissPerByte*float64(bytes)
					}
				}
			}
			for _, call := range step.Comp[proc] {
				comp += cfg.Cost.Cost(call.Op, call.BlockSize)
			}
			compT[proc] += comp
			warmT[proc] += warm
			if !chargeCache {
				warm = 0
			}
			durs[proc] = comp + warm
		}
		if err := sess.Compute(durs); err != nil {
			return nil, fmt.Errorf("machine: step %d: %w", stepIdx, err)
		}

		// Local transfers: the sender copies self messages in memory.
		for proc := range durs {
			durs[proc] = 0
		}
		for _, m := range step.Comm.Msgs {
			if m.Src == m.Dst {
				durs[m.Src] += cfg.LocalFixed + cfg.LocalPerByte*float64(m.Bytes)
			} else {
				pendingBuffers[m.Dst] = append(pendingBuffers[m.Dst], m.Bytes)
			}
		}
		before = sess.ClocksInto(before)
		if err := sess.Compute(durs); err != nil {
			return nil, fmt.Errorf("machine: step %d: %w", stepIdx, err)
		}
		if err := sess.CommunicateInto(&stepRes, step.Comm); err != nil {
			return nil, fmt.Errorf("machine: step %d: %w", stepIdx, err)
		}
		after = sess.ClocksInto(after)
		for proc := range commT {
			commT[proc] += after[proc] - before[proc]
		}
	}

	res.Total = sess.Finish()
	for proc := 0; proc < pr.P; proc++ {
		if compT[proc] > res.Comp {
			res.Comp = compT[proc]
		}
		if commT[proc] > res.Comm {
			res.Comm = commT[proc]
		}
		if warmT[proc] > res.CacheWarm {
			res.CacheWarm = warmT[proc]
		}
		res.Hits += caches[proc].Stats.Hits
		res.Misses += caches[proc].Stats.Misses
	}
	return res, nil
}
