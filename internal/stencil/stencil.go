// Package stencil implements an iterative 5-point Jacobi relaxation over
// a blocked 2-D grid — a fourth application of the paper's restricted
// program class, with a communication structure none of the others have:
// a halo exchange, where every block ships its four edge vectors (8·b
// bytes each) to the owners of its neighbouring blocks every iteration.
// It exercises the class's "graph algorithms whose nodes are gathered
// into basic data blocks" reading (Section 2) and, like the triangular
// solve, mixes message sizes unlike the b×b-block traffic of the
// Gaussian elimination.
//
// The grid has fixed zero (Dirichlet) boundaries; every sweep replaces
// each interior point by the mean of its four neighbours (blockops.Op7).
package stencil

import (
	"fmt"

	"loggpsim/internal/blockops"
	"loggpsim/internal/layout"
	"loggpsim/internal/matrix"
	"loggpsim/internal/program"
)

// Grid describes the blocked domain: NB×NB blocks of B×B points.
type Grid struct {
	NB int
	B  int
}

// NewGrid validates that an n×n domain divides into b×b blocks.
func NewGrid(n, b int) (Grid, error) {
	if n <= 0 || b <= 0 {
		return Grid{}, fmt.Errorf("stencil: invalid domain size %d or block size %d", n, b)
	}
	if n%b != 0 {
		return Grid{}, fmt.Errorf("stencil: block size %d does not divide domain size %d", b, n)
	}
	return Grid{NB: n / b, B: b}, nil
}

// N returns the domain side length.
func (g Grid) N() int { return g.NB * g.B }

// BuildProgram generates the oblivious program of iters Jacobi sweeps on
// the given layout: an initial halo-exchange step, then one step per
// iteration whose computation phase applies Op7 to every block and whose
// communication phase ships the refreshed halos (omitted after the last
// sweep). Edges between co-located blocks become self messages.
func BuildProgram(g Grid, iters int, lay layout.Layout) (*program.Program, error) {
	if iters < 1 {
		return nil, fmt.Errorf("stencil: need at least one iteration, got %d", iters)
	}
	if err := layout.Validate(lay, g.NB); err != nil {
		return nil, err
	}
	pr := program.New(lay.P())
	bytes := blockops.VecBytes(g.B)

	exchange := func(s *program.Step) {
		// Halo edges between co-located blocks are intentional local
		// transfers.
		s.Comm.WithLocalTransfers()
		for bi := 0; bi < g.NB; bi++ {
			for bj := 0; bj < g.NB; bj++ {
				src := lay.Owner(bi, bj)
				for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					ni, nj := bi+d[0], bj+d[1]
					if ni < 0 || ni >= g.NB || nj < 0 || nj >= g.NB {
						continue
					}
					s.Comm.Add(src, lay.Owner(ni, nj), bytes)
				}
			}
		}
	}

	exchange(pr.AddStep()) // initial halos; no computation
	for it := 0; it < iters; it++ {
		s := pr.AddStep()
		for bi := 0; bi < g.NB; bi++ {
			for bj := 0; bj < g.NB; bj++ {
				s.AddOpOn(lay.Owner(bi, bj), blockops.Op7, g.B, uint64(bi*g.NB+bj))
			}
		}
		if it < iters-1 {
			exchange(s)
		}
	}
	return pr, nil
}

// RunReference performs iters Jacobi sweeps on the full n×n field with
// zero boundaries — the oracle for the blocked executor.
func RunReference(field *matrix.Dense, iters int) *matrix.Dense {
	cur := field.Clone()
	next := matrix.New(field.Rows, field.Cols)
	at := func(m *matrix.Dense, i, j int) float64 {
		if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
			return 0
		}
		return m.At(i, j)
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < cur.Rows; i++ {
			for j := 0; j < cur.Cols; j++ {
				next.Set(i, j, 0.25*(at(cur, i-1, j)+at(cur, i+1, j)+at(cur, i, j-1)+at(cur, i, j+1)))
			}
		}
		cur, next = next, cur
	}
	return cur
}

// RunBlocked performs iters Jacobi sweeps with the blocked structure the
// program describes — per-block Op7 sweeps fed by explicit halo vectors
// gathered from neighbouring blocks — and returns the resulting field.
func RunBlocked(field *matrix.Dense, b, iters int) (*matrix.Dense, error) {
	if field.Rows != field.Cols {
		return nil, fmt.Errorf("stencil: domain must be square, got %d×%d", field.Rows, field.Cols)
	}
	g, err := NewGrid(field.Rows, b)
	if err != nil {
		return nil, err
	}
	nb := g.NB
	grab := func(m *matrix.Dense, bi, bj int) *matrix.Dense {
		d := matrix.New(b, b)
		matrix.CopyBlock(d, m, bi, bj, b)
		return d
	}
	cur := make([][]*matrix.Dense, nb)
	next := make([][]*matrix.Dense, nb)
	for i := range cur {
		cur[i] = make([]*matrix.Dense, nb)
		next[i] = make([]*matrix.Dense, nb)
		for j := range cur[i] {
			cur[i][j] = grab(field, i, j)
			next[i][j] = matrix.New(b, b)
		}
	}
	row := func(m *matrix.Dense, r int) []float64 {
		out := make([]float64, b)
		copy(out, m.Data[r*b:(r+1)*b])
		return out
	}
	col := func(m *matrix.Dense, c int) []float64 {
		out := make([]float64, b)
		for r := 0; r < b; r++ {
			out[r] = m.At(r, c)
		}
		return out
	}
	for it := 0; it < iters; it++ {
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				// The halos are the neighbouring blocks' edges — in the
				// parallel execution these are exactly the received
				// messages of the preceding communication step.
				var north, south, west, east []float64
				if bi > 0 {
					north = row(cur[bi-1][bj], b-1)
				}
				if bi < nb-1 {
					south = row(cur[bi+1][bj], 0)
				}
				if bj > 0 {
					west = col(cur[bi][bj-1], b-1)
				}
				if bj < nb-1 {
					east = col(cur[bi][bj+1], 0)
				}
				blockops.ApplyOp7(next[bi][bj], cur[bi][bj], north, south, west, east)
			}
		}
		cur, next = next, cur
	}
	out := matrix.New(field.Rows, field.Cols)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			matrix.SetBlock(out, cur[bi][bj], bi, bj, b)
		}
	}
	return out, nil
}
