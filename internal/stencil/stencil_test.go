package stencil

import (
	"testing"
	"testing/quick"

	"loggpsim/internal/blockops"
	"loggpsim/internal/cost"
	"loggpsim/internal/layout"
	"loggpsim/internal/loggp"
	"loggpsim/internal/matrix"
	"loggpsim/internal/predictor"
)

func TestNewGrid(t *testing.T) {
	g, err := NewGrid(64, 8)
	if err != nil || g.NB != 8 || g.N() != 64 {
		t.Fatalf("NewGrid = %+v, %v", g, err)
	}
	if _, err := NewGrid(64, 7); err == nil {
		t.Fatal("non-dividing block accepted")
	}
	if _, err := NewGrid(0, 4); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestBlockedMatchesReference(t *testing.T) {
	for _, tc := range []struct{ n, b, iters int }{
		{8, 8, 1}, {8, 4, 3}, {24, 4, 5}, {30, 5, 4}, {12, 1, 2},
	} {
		field := matrix.Random(tc.n, int64(tc.n))
		want := RunReference(field, tc.iters)
		got, err := RunBlocked(field, tc.b, tc.iters)
		if err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("n=%d b=%d iters=%d: blocked differs by %g", tc.n, tc.b, tc.iters, d)
		}
	}
}

func TestReferenceSmoothes(t *testing.T) {
	// A delta in the middle spreads to its neighbours with weight 1/4.
	field := matrix.New(5, 5)
	field.Set(2, 2, 4)
	out := RunReference(field, 1)
	if out.At(2, 2) != 0 || out.At(1, 2) != 1 || out.At(2, 3) != 1 {
		t.Fatalf("unexpected spread: centre %g, up %g, right %g",
			out.At(2, 2), out.At(1, 2), out.At(2, 3))
	}
}

func TestUniformFieldDecaysAtBoundary(t *testing.T) {
	// With zero boundaries, an all-ones field keeps interior points at 1
	// only where all four neighbours are interior; corner points drop to
	// 0.5 after one sweep.
	field := matrix.New(4, 4)
	for i := range field.Data {
		field.Data[i] = 1
	}
	out := RunReference(field, 1)
	if out.At(1, 1) != 1 || out.At(0, 0) != 0.5 {
		t.Fatalf("interior %g (want 1), corner %g (want 0.5)", out.At(1, 1), out.At(0, 0))
	}
}

func TestBuildProgramShape(t *testing.T) {
	g, err := NewGrid(32, 8) // 4x4 blocks
	if err != nil {
		t.Fatal(err)
	}
	const iters = 3
	lay := layout.BlockCyclic2D(2, 2)
	pr, err := BuildProgram(g, iters, lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Initial exchange + one step per iteration.
	if len(pr.Steps) != 1+iters {
		t.Fatalf("steps = %d, want %d", len(pr.Steps), 1+iters)
	}
	st := pr.Summarize()
	if want := iters * g.NB * g.NB; st.Ops[blockops.Op7] != want {
		t.Fatalf("Op7 count = %d, want %d", st.Ops[blockops.Op7], want)
	}
	for op := blockops.Op1; op <= blockops.Op6; op++ {
		if st.Ops[op] != 0 {
			t.Fatalf("stencil uses %v", op)
		}
	}
	// Edge messages per exchange: interior edges counted twice (once per
	// direction): 2 * 2 * nb * (nb-1).
	perExchange := 4 * g.NB * (g.NB - 1)
	wantMsgs := perExchange * iters // initial + iters-1 trailing exchanges
	if got := st.NetworkMessages + st.LocalMessages; got != wantMsgs {
		t.Fatalf("messages = %d, want %d", got, wantMsgs)
	}
	// Halos are vector-sized.
	for _, s := range pr.Steps {
		for _, m := range s.Comm.Msgs {
			if m.Bytes != blockops.VecBytes(g.B) {
				t.Fatalf("halo of %d bytes, want %d", m.Bytes, blockops.VecBytes(g.B))
			}
		}
	}
	// The last step must not communicate.
	if len(pr.Steps[len(pr.Steps)-1].Comm.Msgs) != 0 {
		t.Fatal("final sweep communicates")
	}
}

func TestBuildProgramErrors(t *testing.T) {
	g, _ := NewGrid(16, 4)
	if _, err := BuildProgram(g, 0, layout.RowCyclic(2)); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad := layout.Custom(2, "bad", func(bi, bj int) int { return 9 })
	if _, err := BuildProgram(g, 1, bad); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func TestPredictStencil(t *testing.T) {
	g, err := NewGrid(128, 16) // 8x8 blocks
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildProgram(g, 10, layout.BlockCyclic2D(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := predictor.Predict(pr, predictor.Config{
		Params: loggp.MeikoCS2(8),
		Cost:   cost.DefaultAnalytic(),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Total <= 0 || p.Comp <= 0 || p.Comm <= 0 {
		t.Fatalf("prediction not positive: %+v", p)
	}
	// Iterations are homogeneous, so doubling them roughly doubles the
	// prediction (within 10%: the first exchange and last sweep differ).
	pr2, err := BuildProgram(g, 20, layout.BlockCyclic2D(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := predictor.Predict(pr2, predictor.Config{
		Params: loggp.MeikoCS2(8),
		Cost:   cost.DefaultAnalytic(),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := p2.Total / p.Total
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("20/10 iteration ratio = %g, want ~2", ratio)
	}
}

// Property: blocked and reference sweeps agree for random shapes and
// iteration counts.
func TestBlockedProperty(t *testing.T) {
	f := func(seed int64, nbRaw, bRaw, itersRaw uint8) bool {
		nb := int(nbRaw%4) + 1
		b := int(bRaw%5) + 1
		iters := int(itersRaw%4) + 1
		n := nb * b
		field := matrix.Random(n, seed)
		want := RunReference(field, iters)
		got, err := RunBlocked(field, b, iters)
		if err != nil {
			return false
		}
		return matrix.MaxAbsDiff(got, want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
